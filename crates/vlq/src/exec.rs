//! Pluggable executor backends for typed VLQ schedules.
//!
//! A [`Schedule`] (emitted by [`crate::machine::VlqMachine`] or
//! [`crate::program::compile`]) is pure data; everything that *runs* one
//! implements [`Executor`]:
//!
//! * [`CostExecutor`] — replays the schedule against the paper's latency
//!   model, producing the legacy [`MachineReport`] (timeline, op counts,
//!   refresh staleness, deadline misses). Table-2-style compilation
//!   numbers come from here.
//! * [`FrameExecutor`] — replays the schedule on the Pauli-frame
//!   simulator under a [`vlq_circuit::noise::NoiseModel`]: every refresh
//!   pass and logical operation samples a boundary-aware block of noisy
//!   syndrome rounds through the decoder (the shared
//!   `vlq_qec::PreparedBlock` core, sized to the instruction's actual
//!   round span), and the surviving residual
//!   logical errors accumulate in per-shot logical Pauli frames. The
//!   result is a *program-level* logical error rate — the fig-11-style
//!   Monte-Carlo machinery applied to whole logical programs.
//! * [`TraceExecutor`] — renders the schedule as a
//!   [`vlq_sweep::artifact::Table`] (CSV / JSON-lines) for diffing and
//!   visualization.
//!
//! [`ProgramSweepExecutor`] additionally adapts the frame backend to the
//! `vlq-sweep` work-stealing engine so program workloads (GHZ, teleport,
//! adder) can be scanned across distances and error rates exactly like
//! memory experiments.
//!
//! # Fidelity model
//!
//! The frame backend is a two-level simulation. At the physical level,
//! each exposure of a logical qubit — a background refresh pass, a
//! surgery exposure window, an idle-in-DRAM stretch — is sampled as a
//! seeded Monte-Carlo *block*: a `vlq_qec::PreparedBlock` whose noisy
//! syndrome-extraction circuit (built by `vlq-surface`, noise-windowed
//! by `vlq-circuit`) is run on the bit-parallel Pauli-frame simulator
//! and decoded per shot lane, in both the Z and the X guard sector.
//! Under the default [`vlq_surface::schedule::Boundary::MidCircuit`]
//! mode each block is sized to the instruction's *actual* round span;
//! interior blocks have ideal prep/readout boundaries while the
//! program's genuine ends (first exposure after page-in, destructive
//! measurement) charge their real boundary noise exactly once, so
//! error scales with real exposure;
//! [`vlq_surface::schedule::Boundary::Full`] reproduces the legacy
//! model (every timestep resamples a whole memory experiment)
//! bit-for-bit. At the logical level, each lane keeps
//! one Pauli frame per logical qubit; a block whose decode left a
//! residual logical flip XORs that flip into the lane's frame, and
//! Clifford schedule instructions propagate the frames (a transversal
//! CNOT copies X errors control→target and Z errors target→control,
//! etc.). Blocks are sampled independently (no correlations across block
//! boundaries), a surgery *merge* propagates frames as a logical CNOT
//! (a split only adds exposure), and `ConsumeMagic` counts exposure
//! only (Pauli frames cannot
//! track non-Clifford gates exactly). A shot fails when any measured
//! logical outcome flips, or any qubit still live at the end of the
//! program carries a non-identity frame.

use std::collections::BTreeMap;

use vlq_decoder::DecoderKind;
use vlq_math::stats::BinomialEstimate;
use vlq_qec::{BlockConfig, BlockScratch, BlockSpec, Parallelism, PreparedBlock};
use vlq_sim::{CliffordGate, FrameBatch};
use vlq_surface::schedule::{Basis, Boundary, MemorySpec, Setup};
use vlq_surgery::LogicalOp;
use vlq_sweep::artifact::{Table, Value};
use vlq_sweep::{splitmix64, SweepExecutor, SweepPoint};
use vlq_telemetry::{Metric, Recorder};

use crate::isa::{Instr, LogicalGate1Q, Schedule};
use crate::machine::{
    LogicalId, MachineConfig, MachineError, MachineReport, RefreshPolicy, TimelineEvent,
};
use crate::program::{compile, LogicalCircuit};
use vlq_arch::geometry::Embedding;
use vlq_arch::params::HardwareParams;

/// A backend that consumes a typed schedule.
pub trait Executor {
    /// What the backend produces.
    type Output;

    /// Executes the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Schedule`] when the schedule fails
    /// structural validation (hand-built schedules; machine-emitted ones
    /// are valid by construction).
    fn run(&self, schedule: &Schedule) -> Result<Self::Output, MachineError>;
}

/// The `Setup` a machine configuration's memory experiments use.
pub fn setup_for_config(config: &MachineConfig) -> Setup {
    match (config.embedding, config.refresh) {
        (Embedding::Baseline2D, _) => Setup::Baseline,
        (Embedding::Natural, RefreshPolicy::Interleaved) => Setup::NaturalInterleaved,
        (Embedding::Natural, RefreshPolicy::AllAtOnce) => Setup::NaturalAllAtOnce,
        (Embedding::Compact, RefreshPolicy::Interleaved) => Setup::CompactInterleaved,
        (Embedding::Compact, RefreshPolicy::AllAtOnce) => Setup::CompactAllAtOnce,
    }
}

/// The embedding + refresh policy behind a `Setup`.
pub fn config_for_setup(setup: Setup) -> (Embedding, RefreshPolicy) {
    match setup {
        Setup::Baseline => (Embedding::Baseline2D, RefreshPolicy::Interleaved),
        Setup::NaturalInterleaved => (Embedding::Natural, RefreshPolicy::Interleaved),
        Setup::NaturalAllAtOnce => (Embedding::Natural, RefreshPolicy::AllAtOnce),
        Setup::CompactInterleaved => (Embedding::Compact, RefreshPolicy::Interleaved),
        Setup::CompactAllAtOnce => (Embedding::Compact, RefreshPolicy::AllAtOnce),
    }
}

// ---------------------------------------------------------------------
// CostExecutor
// ---------------------------------------------------------------------

/// Replays a schedule against the latency model, reproducing the legacy
/// eager-path [`MachineReport`] exactly (pinned by
/// `tests/executor_golden.rs`).
#[derive(Clone, Copy, Debug, Default)]
pub struct CostExecutor;

impl Executor for CostExecutor {
    type Output = MachineReport;

    fn run(&self, schedule: &Schedule) -> Result<MachineReport, MachineError> {
        schedule.validate()?;
        Ok(replay_costs(schedule))
    }
}

impl CostExecutor {
    /// [`Executor::run`] with telemetry: the identical report, with its
    /// deadline-miss count and the schedule's page traffic recorded
    /// through `recorder` (the memory-hierarchy contention counters the
    /// multi-tenant roadmap item measures against).
    pub fn run_recorded(
        &self,
        schedule: &Schedule,
        recorder: &Recorder,
    ) -> Result<MachineReport, MachineError> {
        let report = self.run(schedule)?;
        record_machine_report(&report, schedule, recorder);
        Ok(report)
    }
}

/// Records a cost replay's contention counters: deadline misses from
/// the report, page-in/out traffic counted from the schedule.
pub fn record_machine_report(report: &MachineReport, schedule: &Schedule, recorder: &Recorder) {
    recorder.add(Metric::CostDeadlineMisses, report.deadline_misses);
    if recorder.is_enabled() {
        let (mut ins, mut outs) = (0u64, 0u64);
        for instr in schedule.instrs() {
            match instr {
                Instr::PageIn { .. } => ins += 1,
                Instr::PageOut { .. } => outs += 1,
                _ => {}
            }
        }
        recorder.add(Metric::CostPageIns, ins);
        recorder.add(Metric::CostPageOuts, outs);
    }
}

/// The lenient (non-validating) cost replay behind both
/// [`CostExecutor`] and [`crate::machine::VlqMachine::finish`].
pub fn replay_costs(schedule: &Schedule) -> MachineReport {
    let k = schedule.config().k as u64;
    let mut report = MachineReport {
        total_timesteps: schedule.duration(),
        ..MachineReport::default()
    };
    // Per-qubit bookkeeping reconstructed from the schedule.
    let mut last_ec: BTreeMap<LogicalId, u64> = BTreeMap::new();
    let mut location: BTreeMap<LogicalId, vlq_arch::address::StackCoord> = BTreeMap::new();
    // Deferred legacy timeline events (ConsumeMagic renders as the two
    // eager-path Initialize ops it replaced, the second one interleaved
    // after the refresh passes of its first timestep).
    let mut deferred: std::collections::VecDeque<(u64, TimelineEvent)> =
        std::collections::VecDeque::new();
    let emit = |timeline: &mut Vec<TimelineEvent>,
                deferred: &mut std::collections::VecDeque<(u64, TimelineEvent)>,
                t: u64,
                event: TimelineEvent| {
        while deferred.front().is_some_and(|(dt, _)| *dt < t) {
            let (_, e) = deferred.pop_front().expect("checked non-empty");
            timeline.push(e);
        }
        timeline.push(event);
    };

    for instr in schedule.instrs() {
        match *instr {
            Instr::PageIn { qubit, addr, t } => {
                last_ec.insert(qubit, t);
                location.insert(qubit, addr.stack);
            }
            Instr::PageOut { qubit, .. } => {
                location.remove(&qubit);
            }
            Instr::Correction { qubit, t } => {
                last_ec.insert(qubit, t);
            }
            Instr::RefreshRound {
                stack,
                qubit,
                rounds,
                t,
            } => {
                emit(
                    &mut report.timeline,
                    &mut deferred,
                    t,
                    TimelineEvent::Refresh(t, stack, rounds),
                );
                report.refresh_passes += 1;
                last_ec.insert(qubit, t);
                for (&q, &s) in &location {
                    if s != stack {
                        continue;
                    }
                    let staleness = t.saturating_sub(*last_ec.entry(q).or_insert(t));
                    if staleness > report.max_staleness {
                        report.max_staleness = staleness;
                    }
                    if staleness > k {
                        report.deadline_misses += 1;
                    }
                }
            }
            Instr::Logical1Q { qubit, t, .. } => {
                emit(
                    &mut report.timeline,
                    &mut deferred,
                    t,
                    TimelineEvent::Op(t, LogicalOp::Initialize, vec![qubit]),
                );
            }
            Instr::TransversalCnot {
                control, target, t, ..
            } => {
                emit(
                    &mut report.timeline,
                    &mut deferred,
                    t,
                    TimelineEvent::Op(t, LogicalOp::TransversalCnot, vec![control, target]),
                );
                report.transversal_cnots += 1;
            }
            Instr::LatticeSurgeryCnot {
                control, target, t, ..
            } => {
                emit(
                    &mut report.timeline,
                    &mut deferred,
                    t,
                    TimelineEvent::Op(t, LogicalOp::LatticeSurgeryCnot, vec![control, target]),
                );
                report.surgery_cnots += 1;
            }
            Instr::SurgeryMerge { a, b, t } => {
                emit(
                    &mut report.timeline,
                    &mut deferred,
                    t,
                    TimelineEvent::Op(t, LogicalOp::Merge, vec![a, b]),
                );
            }
            Instr::SurgerySplit { a, b, t } => {
                emit(
                    &mut report.timeline,
                    &mut deferred,
                    t,
                    TimelineEvent::Op(t, LogicalOp::Split, vec![a, b]),
                );
            }
            Instr::Move {
                qubit,
                from,
                to,
                to_addr,
                t,
            } => {
                emit(
                    &mut report.timeline,
                    &mut deferred,
                    t,
                    TimelineEvent::Move(t, qubit, from, to),
                );
                report.moves += 1;
                last_ec.insert(qubit, t);
                location.insert(qubit, to_addr.stack);
            }
            Instr::ConsumeMagic { qubit, t } => {
                emit(
                    &mut report.timeline,
                    &mut deferred,
                    t,
                    TimelineEvent::Op(t, LogicalOp::Initialize, vec![qubit]),
                );
                deferred.push_back((
                    t + 1,
                    TimelineEvent::Op(t + 1, LogicalOp::Initialize, vec![qubit]),
                ));
            }
            Instr::MeasureLogical { qubit, t, .. } => {
                emit(
                    &mut report.timeline,
                    &mut deferred,
                    t,
                    TimelineEvent::Op(t, LogicalOp::Measure, vec![qubit]),
                );
            }
        }
    }
    for (_, event) in deferred {
        report.timeline.push(event);
    }
    report
}

// ---------------------------------------------------------------------
// TraceExecutor
// ---------------------------------------------------------------------

/// Renders a schedule as a machine-readable table (one row per
/// instruction) for diffing and visualization; write it with
/// [`Table::write_dir`] or the CSV/JSONL writers.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceExecutor;

/// Column names of the trace table.
pub const TRACE_COLUMNS: [&str; 8] = [
    "i", "t", "span", "instr", "qubits", "stack_x", "stack_y", "rounds",
];

impl Executor for TraceExecutor {
    type Output = Table;

    fn run(&self, schedule: &Schedule) -> Result<Table, MachineError> {
        schedule.validate()?;
        let mut table = Table::new(TRACE_COLUMNS);
        for (i, instr) in schedule.instrs().iter().enumerate() {
            let mut qubits = String::new();
            instr.for_each_qubit(|q| {
                if !qubits.is_empty() {
                    qubits.push(' ');
                }
                qubits.push_str(&format!("L{}", q.0));
            });
            let (stack, rounds) = match *instr {
                Instr::PageIn { addr, .. }
                | Instr::PageOut { addr, .. }
                | Instr::MeasureLogical { addr, .. } => (Some(addr.stack), None),
                Instr::RefreshRound { stack, rounds, .. } => (Some(stack), Some(rounds)),
                Instr::TransversalCnot { stack, .. } => (Some(stack), None),
                Instr::Move { to, .. } => (Some(to), None),
                Instr::LatticeSurgeryCnot { control_stack, .. } => (Some(control_stack), None),
                _ => (None, None),
            };
            table.row([
                i.into(),
                instr.t().into(),
                instr.span().into(),
                instr.mnemonic().into(),
                qubits.into(),
                stack.map_or(Value::Null, |s| (s.x as u64).into()),
                stack.map_or(Value::Null, |s| (s.y as u64).into()),
                rounds.map_or(Value::Null, Into::into),
            ]);
        }
        Ok(table)
    }
}

// ---------------------------------------------------------------------
// FrameExecutor
// ---------------------------------------------------------------------

/// Program-level Monte-Carlo result from [`FrameExecutor`].
#[derive(Clone, Debug)]
pub struct ProgramReport {
    /// Monte-Carlo shots run.
    pub shots: u64,
    /// Shots in which the program's logical output was corrupted.
    pub failures: u64,
    /// Syndrome-block samples taken per shot (each one a decoded
    /// Monte-Carlo memory block in both guard sectors).
    pub blocks_per_shot: u64,
}

impl ProgramReport {
    /// The program-level logical error rate.
    pub fn logical_error_rate(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.failures as f64 / self.shots as f64
        }
    }

    /// Binomial estimate with confidence machinery.
    pub fn estimate(&self) -> BinomialEstimate {
        BinomialEstimate::new(self.failures, self.shots.max(1))
    }
}

/// Replays a schedule on the Pauli-frame simulator with a noise model,
/// decoding every syndrome block, and reports the program-level logical
/// error rate.
///
/// # Examples
///
/// ```no_run
/// use vlq::exec::{Executor, FrameExecutor};
/// use vlq::machine::MachineConfig;
/// use vlq::program::{compile, LogicalCircuit};
///
/// let compiled = compile(&LogicalCircuit::ghz(4), MachineConfig::compact_demo()).unwrap();
/// let report = FrameExecutor::at_scale(1e-3)
///     .with_shots(1000)
///     .run(&compiled.schedule)
///     .unwrap();
/// println!("GHZ-4 logical error rate: {:.3e}", report.logical_error_rate());
/// ```
#[derive(Clone, Debug)]
pub struct FrameExecutor {
    /// Physical error scale `p` (the SC-SC two-qubit rate; all other
    /// rates derive from it through the setup's noise model).
    pub p: f64,
    /// Decoder run on every syndrome block.
    pub decoder: DecoderKind,
    /// Monte-Carlo shots.
    pub shots: u64,
    /// Base RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// In-block worker policy the shot batches are replayed under
    /// (serial by default; results are bit-identical either way).
    pub parallelism: Parallelism,
    /// Which block boundary exposures are sampled under.
    ///
    /// [`Boundary::MidCircuit`] (the default) sizes one block to each
    /// instruction's actual round span; interior blocks are
    /// boundary-light while the program's genuine ends charge their
    /// real prep/readout noise exactly once (see `exposure_boundary`),
    /// so error scales with real exposure. [`Boundary::Full`]
    /// reproduces the legacy behavior bit-for-bit: every exposure
    /// resamples a whole memory experiment, prep/readout boundary
    /// rounds included, one `d`-round block per timestep.
    pub boundary: Boundary,
}

impl FrameExecutor {
    /// A frame executor at physical error scale `p` (union-find decoder,
    /// 1024 shots, mid-circuit blocks, the workspace's default seed).
    pub fn at_scale(p: f64) -> Self {
        FrameExecutor {
            p,
            decoder: DecoderKind::UnionFind,
            shots: 1024,
            seed: 2020,
            parallelism: Parallelism::serial(),
            boundary: Boundary::MidCircuit,
        }
    }

    /// Sets the shot count.
    pub fn with_shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the decoder.
    pub fn with_decoder(mut self, decoder: DecoderKind) -> Self {
        self.decoder = decoder;
        self
    }

    /// Sets the block boundary mode.
    pub fn with_boundary(mut self, boundary: Boundary) -> Self {
        self.boundary = boundary;
        self
    }

    /// Sets the in-block worker policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

impl Executor for FrameExecutor {
    type Output = ProgramReport;

    fn run(&self, schedule: &Schedule) -> Result<ProgramReport, MachineError> {
        schedule.validate()?;
        let prepared = FramePrepared::new(schedule.clone(), self.p, self.decoder, self.boundary);
        let failures = prepared.run_failures_par(self.shots, self.seed, &self.parallelism);
        Ok(ProgramReport {
            shots: self.shots,
            failures,
            blocks_per_shot: prepared.blocks_per_shot(),
        })
    }
}

impl FrameExecutor {
    /// [`Executor::run`] with telemetry: the identical report, plus
    /// per-instruction-kind block-exposure counters recorded into
    /// `recorder` (see [`FramePrepared::run_failures_recorded`]).
    pub fn run_recorded(
        &self,
        schedule: &Schedule,
        recorder: &Recorder,
    ) -> Result<ProgramReport, MachineError> {
        schedule.validate()?;
        let prepared = FramePrepared::new(schedule.clone(), self.p, self.decoder, self.boundary);
        let failures =
            prepared.run_failures_recorded_par(self.shots, self.seed, recorder, &self.parallelism);
        Ok(ProgramReport {
            shots: self.shots,
            failures,
            blocks_per_shot: prepared.blocks_per_shot(),
        })
    }
}

/// A schedule prepared for repeated seeded frame replay: the noisy
/// syndrome-block circuits, decoding graphs, and decoders for every
/// block length the schedule needs, in both guard sectors.
///
/// Shared between [`FrameExecutor`] (one-shot runs) and
/// [`ProgramSweepExecutor`] (the engine calls `run_failures` once per
/// shot chunk).
pub struct FramePrepared {
    schedule: Schedule,
    boundary: Boundary,
    /// Dense frame-lane slot per logical qubit.
    slots: BTreeMap<LogicalId, usize>,
    /// Prepared (Z-basis, X-basis) blocks keyed by (round count,
    /// boundary). The Z-basis guard failure is a residual logical X
    /// flip, and vice versa.
    blocks: BTreeMap<(usize, Boundary), (PreparedBlock, PreparedBlock)>,
    /// The boundary each exposure samples under, keyed by (instruction
    /// index, operand offset); computed once at preparation so the
    /// replay loops and the block registry can never disagree. Empty
    /// in legacy [`Boundary::Full`] mode.
    exposure_boundaries: BTreeMap<(u64, u64), Boundary>,
    /// Process-unique id (never reused); a persistent [`FrameScratch`]
    /// keys its per-block decode scratch to it so worker scratch can
    /// never be reused against a different preparation's graphs.
    identity: u64,
}

/// Per-block sample→decode scratch of one [`FrameScratch`], keyed like
/// [`FramePrepared::blocks`] plus the guard sector (0 = Z, 1 = X). One
/// [`BlockScratch`] per prepared block, because decoder scratch may
/// carry graph-keyed memoisation (see
/// [`PreparedBlock::sample_failure_words_reusing`]).
type BlockScratchMap = BTreeMap<(usize, Boundary, u8), BlockScratch>;

/// Reusable working set for [`FramePrepared`]'s batch replay: the
/// logical Pauli frames, the per-lane failure accumulator, the
/// measured-slot flags, the measurement read-out buffer, and one
/// [`BlockScratch`] per sampled block. Holding one scratch across
/// batches — per worker, on the pooled path — makes the steady state
/// allocation-free (with the Union-Find decoder; MWPM's blossom matcher
/// allocates internally by design), where the frame replay previously
/// rebuilt its whole working set on every exposure of every batch.
///
/// A scratch automatically re-keys itself when it is handed to a
/// different [`FramePrepared`] (block scratch is dropped, frame buffers
/// are reshaped), so persistent per-worker scratch is safe across
/// sweeps over many prepared schedules.
#[derive(Default)]
pub struct FrameScratch {
    /// Identity of the [`FramePrepared`] the block scratch is keyed to.
    owner: u64,
    frames: FrameBatch,
    /// Per-lane program-failure accumulator.
    failed: Vec<u64>,
    /// Per-slot measured flags (a dense stand-in for the previous
    /// per-batch `BTreeSet<LogicalId>`, whose node churn allocated).
    measured: Vec<bool>,
    /// Measurement outcome-flip read-out buffer.
    outcome: Vec<u64>,
    blocks: BlockScratchMap,
}

impl FrameScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops block scratch built against a different preparation.
    fn rekey(&mut self, owner: u64) {
        if self.owner != owner {
            self.owner = owner;
            self.blocks.clear();
        }
    }
}

/// Domain separator of the mid-circuit block-seed derivation.
const BLOCK_SEED_DOMAIN: u64 = 0x626c_6f63_6b73_6565; // "blocksee"

/// The seeded random stream of one sampled block: splitmix64-chained
/// over the batch seed, the instruction index, the guard sector
/// (0 = Z, 1 = X), and the block offset within the instruction (the
/// operand index for two-qubit instructions). Every coordinate passes
/// through a full splitmix64 round, so adjacent instructions — and the
/// two sectors / operands of one instruction — can never share a
/// stream (the legacy derivation XORed small constants into one
/// stream, which collides under crafted indices).
fn block_seed(batch_seed: u64, instr: u64, sector: u64, offset: u64) -> u64 {
    let mut h = splitmix64(batch_seed ^ BLOCK_SEED_DOMAIN);
    h = splitmix64(h ^ splitmix64(instr));
    h = splitmix64(h ^ splitmix64(sector));
    splitmix64(h ^ splitmix64(offset))
}

/// The boundary one exposure samples under. In the ends-aware
/// mid-circuit mode, a qubit's *first* exposure after page-in charges
/// real preparation noise (`Prep`), the destructive-measurement
/// exposure charges real readout noise (`Readout`), an exposure that
/// is both at once is the full memory experiment, and interior
/// exposures are boundary-light — so a program charges each physical
/// boundary exactly once, where it actually happens. The uniform
/// modes (`Full`, `Prep`, `Readout`) apply themselves to every block.
fn exposure_boundary(mode: Boundary, first: bool, measures: bool) -> Boundary {
    if mode != Boundary::MidCircuit {
        return mode;
    }
    match (first, measures) {
        (true, true) => Boundary::Full,
        (true, false) => Boundary::Prep,
        (false, true) => Boundary::Readout,
        (false, false) => Boundary::MidCircuit,
    }
}

impl FramePrepared {
    /// Builds all block experiments a schedule needs under a boundary
    /// mode.
    ///
    /// Under [`Boundary::Full`] every exposure is a whole memory
    /// experiment resampled per timestep (the legacy model, preserved
    /// bit-for-bit). Under the mid-circuit default, one block is sized
    /// to each instruction's actual round span — a refresh pass samples
    /// exactly its `rounds`, a span-`s` operation samples one
    /// `s * d`-round block per participant (surgery exposure windows,
    /// idle-in-DRAM stretches, magic-state waits) — and the program's
    /// genuine ends charge their real boundary noise via
    /// the ends-aware exposure rule (first exposure after page-in → `Prep`,
    /// destructive measurement → `Readout`); everything in between is
    /// boundary-light.
    pub fn new(schedule: Schedule, p: f64, decoder: DecoderKind, boundary: Boundary) -> Self {
        let config = *schedule.config();
        let setup = setup_for_config(&config);
        let legacy = boundary == Boundary::Full;
        let mut slots = BTreeMap::new();
        let mut needed: std::collections::BTreeSet<(usize, Boundary)> = Default::default();
        let mut exposure_boundaries: BTreeMap<(u64, u64), Boundary> = BTreeMap::new();
        let mut fresh: std::collections::BTreeSet<LogicalId> = Default::default();
        for (idx, instr) in schedule.instrs().iter().enumerate() {
            let idx = idx as u64;
            instr.for_each_qubit(|q| {
                let next = slots.len();
                slots.entry(q).or_insert(next);
            });
            if legacy {
                // Legacy: operations expose participants one timestep
                // (= d rounds) at a time, every block a full memory
                // experiment.
                match instr {
                    Instr::RefreshRound { rounds, .. } => {
                        needed.insert((*rounds, Boundary::Full));
                    }
                    _ if instr.span() > 0 => {
                        needed.insert((config.d, Boundary::Full));
                    }
                    _ => {}
                }
                continue;
            }
            match instr {
                Instr::PageIn { qubit, .. } => {
                    fresh.insert(*qubit);
                }
                Instr::PageOut { qubit, .. } => {
                    fresh.remove(qubit);
                }
                Instr::RefreshRound { qubit, rounds, .. } => {
                    let b = exposure_boundary(boundary, fresh.remove(qubit), false);
                    exposure_boundaries.insert((idx, 0), b);
                    needed.insert((*rounds, b));
                }
                other if other.span() > 0 => {
                    let window = other.span() as usize * config.d;
                    let measures = matches!(other, Instr::MeasureLogical { .. });
                    let mut off = 0u64;
                    other.for_each_qubit(|q| {
                        let b = exposure_boundary(boundary, fresh.remove(&q), measures);
                        exposure_boundaries.insert((idx, off), b);
                        needed.insert((window, b));
                        off += 1;
                    });
                }
                _ => {}
            }
        }
        let prepare = |rounds: usize, basis: Basis, block_boundary: Boundary| {
            let mut spec = MemorySpec::standard(setup, config.d, config.k, basis);
            spec.rounds = rounds;
            PreparedBlock::prepare(
                &BlockConfig::new(
                    BlockSpec {
                        memory: spec,
                        boundary: block_boundary,
                    },
                    p,
                )
                .with_decoder(decoder),
            )
        };
        let blocks = needed
            .into_iter()
            .map(|(r, b)| ((r, b), (prepare(r, Basis::Z, b), prepare(r, Basis::X, b))))
            .collect();
        static NEXT_IDENTITY: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        FramePrepared {
            schedule,
            boundary,
            slots,
            blocks,
            exposure_boundaries,
            identity: NEXT_IDENTITY.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Syndrome-block samples per shot (both sectors of one exposure
    /// count as one block).
    pub fn blocks_per_shot(&self) -> u64 {
        let legacy = self.boundary == Boundary::Full;
        self.schedule
            .instrs()
            .iter()
            .map(|i| match i {
                Instr::RefreshRound { .. } => 1,
                _ if legacy => i.span() * i.num_qubits() as u64,
                _ if i.span() > 0 => i.num_qubits() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Runs `shots` seeded shots and returns the number of corrupted
    /// programs. Deterministic given `seed`, independent of batching.
    pub fn run_failures(&self, shots: u64, seed: u64) -> u64 {
        self.run_failures_scratch(shots, seed, &mut FrameScratch::new())
    }

    /// [`FramePrepared::run_failures`] against caller-owned scratch:
    /// identical failure counts, with the replay's whole working set
    /// (frames, accumulators, per-block decode scratch) reused across
    /// batches *and* across calls — zero steady-state allocation with
    /// the Union-Find decoder
    /// (`crates/vlq/tests/frame_alloc_probe.rs` pins this).
    pub fn run_failures_scratch(&self, shots: u64, seed: u64, scratch: &mut FrameScratch) -> u64 {
        const LANES_PER_BATCH: usize = 1024;
        let mut failures = 0u64;
        let mut remaining = shots;
        let mut batch_idx = 0u64;
        while remaining > 0 {
            let lanes = (remaining as usize).min(LANES_PER_BATCH);
            let batch_seed = splitmix64(seed ^ splitmix64(batch_idx));
            failures += if self.boundary == Boundary::Full {
                self.run_batch_legacy(lanes, batch_seed, scratch)
            } else {
                self.run_batch(lanes, batch_seed, scratch)
            };
            remaining -= lanes as u64;
            batch_idx += 1;
        }
        failures
    }

    /// [`FramePrepared::run_failures`] under a worker policy: the
    /// batches (independently seeded through the same
    /// `splitmix64(seed ^ splitmix64(batch_idx))` schedule) are claimed
    /// work-stealing-style by the pool's workers, and the per-batch
    /// failure counts reduce in batch order — bit-identical to the
    /// serial loop at any worker count. Each worker replays its batches
    /// against a persistent [`FrameScratch`] held in the pool's typed
    /// worker-state slots, so — like the `vlq-qec` block path — the
    /// steady state allocates nothing.
    pub fn run_failures_par(&self, shots: u64, seed: u64, par: &Parallelism) -> u64 {
        const LANES_PER_BATCH: u64 = 1024;
        let Some(pool) = par.pool() else {
            return self.run_failures(shots, seed);
        };
        let tasks = shots.div_ceil(LANES_PER_BATCH);
        let mut out = [0u64];
        pool.run_tasks(tasks, 1, &mut out, &|batch_idx, worker, slots| {
            let lanes = (shots - batch_idx * LANES_PER_BATCH).min(LANES_PER_BATCH) as usize;
            let batch_seed = splitmix64(seed ^ splitmix64(batch_idx));
            let failures = pool.worker_state(worker, FrameScratch::new, |scratch| {
                if self.boundary == Boundary::Full {
                    self.run_batch_legacy(lanes, batch_seed, scratch)
                } else {
                    self.run_batch(lanes, batch_seed, scratch)
                }
            });
            slots[0].store(failures, std::sync::atomic::Ordering::Relaxed);
        });
        out[0]
    }

    /// [`FramePrepared::run_failures`] with telemetry: the identical
    /// failure count, plus per-instruction-kind block-exposure counters
    /// (one replay of the schedule per batch, so the counts are a pure
    /// function of the schedule and the batch count — deterministic for
    /// any worker schedule).
    pub fn run_failures_recorded(&self, shots: u64, seed: u64, recorder: &Recorder) -> u64 {
        self.run_failures_recorded_par(shots, seed, recorder, &Parallelism::serial())
    }

    /// [`FramePrepared::run_failures_recorded`] under a worker policy.
    /// The exposure counters are a pure function of the schedule and
    /// the batch count, so the recorded values — like the failure
    /// count — are identical at any worker count.
    pub fn run_failures_recorded_par(
        &self,
        shots: u64,
        seed: u64,
        recorder: &Recorder,
        par: &Parallelism,
    ) -> u64 {
        const LANES_PER_BATCH: u64 = 1024;
        let failures = self.run_failures_par(shots, seed, par);
        if recorder.is_enabled() {
            let batches = shots.div_ceil(LANES_PER_BATCH);
            self.record_block_exposures(recorder, batches);
        }
        failures
    }

    /// Adds each instruction kind's sampled block-exposure count —
    /// mirroring the [`FramePrepared::blocks_per_shot`] accounting — to
    /// the recorder, scaled by `batches` (each batch replays the
    /// schedule once for all of its lanes).
    fn record_block_exposures(&self, recorder: &Recorder, batches: u64) {
        let legacy = self.boundary == Boundary::Full;
        for instr in self.schedule.instrs() {
            let exposures = match instr {
                Instr::RefreshRound { .. } => 1,
                _ if legacy => instr.span() * instr.num_qubits() as u64,
                _ if instr.span() > 0 => instr.num_qubits() as u64,
                _ => 0,
            };
            if exposures == 0 {
                continue;
            }
            let metric = match instr {
                Instr::RefreshRound { .. } => Metric::ExecRefreshBlocks,
                Instr::Logical1Q { .. } => Metric::ExecLogical1QBlocks,
                Instr::TransversalCnot { .. } | Instr::LatticeSurgeryCnot { .. } => {
                    Metric::ExecCnotBlocks
                }
                Instr::SurgeryMerge { .. } | Instr::SurgerySplit { .. } => {
                    Metric::ExecSurgeryBlocks
                }
                Instr::Move { .. } => Metric::ExecMoveBlocks,
                Instr::ConsumeMagic { .. } => Metric::ExecMagicBlocks,
                Instr::MeasureLogical { .. } => Metric::ExecMeasureBlocks,
                Instr::PageIn { .. } | Instr::PageOut { .. } | Instr::Correction { .. } => continue,
            };
            recorder.add(metric, exposures * batches);
        }
    }

    /// Exposes one qubit slot to a single sampled block of `rounds`
    /// syndrome rounds, in both guard sectors, XORing residual logical
    /// flips into the frames. The block's boundary comes from the
    /// prepared per-exposure assignment.
    fn expose_block(
        &self,
        frames: &mut FrameBatch,
        blocks: &mut BlockScratchMap,
        slot: usize,
        rounds: usize,
        lanes: usize,
        batch_seed: u64,
        instr: u64,
        offset: u64,
    ) {
        let boundary = self.exposure_boundaries[&(instr, offset)];
        let (z_block, x_block) = &self.blocks[&(rounds, boundary)];
        // Z-basis guard failure = residual logical X error.
        let zs = blocks.entry((rounds, boundary, 0)).or_default();
        let x_flips = z_block.sample_failure_words_reusing(
            lanes,
            block_seed(batch_seed, instr, 0, offset),
            zs,
        );
        frames.xor_x_words(slot, x_flips);
        let xs = blocks.entry((rounds, boundary, 1)).or_default();
        let z_flips = x_block.sample_failure_words_reusing(
            lanes,
            block_seed(batch_seed, instr, 1, offset),
            xs,
        );
        frames.xor_z_words(slot, z_flips);
    }

    /// The boundary-aware replay: every instruction exposes each
    /// participant to one block sized to its actual round span.
    fn run_batch(&self, lanes: usize, batch_seed: u64, scratch: &mut FrameScratch) -> u64 {
        let words = lanes.div_ceil(64).max(1);
        let n_slots = self.slots.len().max(1);
        let d = self.schedule.config().d;
        scratch.rekey(self.identity);
        let FrameScratch {
            frames,
            failed,
            measured,
            outcome,
            blocks,
            ..
        } = scratch;
        frames.reset(n_slots, lanes);
        failed.clear();
        failed.resize(words, 0);
        measured.clear();
        measured.resize(n_slots, false);
        let slot = |q: LogicalId| self.slots[&q];
        for (idx, instr) in self.schedule.instrs().iter().enumerate() {
            let idx = idx as u64;
            let window = instr.span() as usize * d;
            match *instr {
                Instr::PageIn { qubit, .. } => frames.reset_qubit(slot(qubit)),
                Instr::PageOut { qubit, .. } => frames.reset_qubit(slot(qubit)),
                Instr::Correction { .. } => {}
                Instr::RefreshRound { qubit, rounds, .. } => {
                    self.expose_block(
                        frames,
                        blocks,
                        slot(qubit),
                        rounds,
                        lanes,
                        batch_seed,
                        idx,
                        0,
                    );
                }
                Instr::Logical1Q { qubit, gate, .. } => {
                    if gate == LogicalGate1Q::H {
                        frames.apply(CliffordGate::H(slot(qubit)));
                    }
                    self.expose_block(
                        frames,
                        blocks,
                        slot(qubit),
                        window,
                        lanes,
                        batch_seed,
                        idx,
                        0,
                    );
                }
                Instr::TransversalCnot {
                    control, target, ..
                }
                | Instr::LatticeSurgeryCnot {
                    control, target, ..
                } => {
                    frames.apply(CliffordGate::Cnot(slot(control), slot(target)));
                    self.expose_block(
                        frames,
                        blocks,
                        slot(control),
                        window,
                        lanes,
                        batch_seed,
                        idx,
                        0,
                    );
                    self.expose_block(
                        frames,
                        blocks,
                        slot(target),
                        window,
                        lanes,
                        batch_seed,
                        idx,
                        1,
                    );
                }
                Instr::SurgeryMerge { a, b, .. } => {
                    // A merge's joint parity measurement spreads errors
                    // between the fused patches; the logical-level view
                    // of that spread is CNOT propagation.
                    frames.apply(CliffordGate::Cnot(slot(a), slot(b)));
                    self.expose_block(frames, blocks, slot(a), window, lanes, batch_seed, idx, 0);
                    self.expose_block(frames, blocks, slot(b), window, lanes, batch_seed, idx, 1);
                }
                Instr::SurgerySplit { a, b, .. } => {
                    self.expose_block(frames, blocks, slot(a), window, lanes, batch_seed, idx, 0);
                    self.expose_block(frames, blocks, slot(b), window, lanes, batch_seed, idx, 1);
                }
                Instr::Move { qubit, .. } | Instr::ConsumeMagic { qubit, .. } => {
                    self.expose_block(
                        frames,
                        blocks,
                        slot(qubit),
                        window,
                        lanes,
                        batch_seed,
                        idx,
                        0,
                    );
                }
                Instr::MeasureLogical { qubit, .. } => {
                    self.expose_block(
                        frames,
                        blocks,
                        slot(qubit),
                        window,
                        lanes,
                        batch_seed,
                        idx,
                        0,
                    );
                    // A destructive Z readout is corrupted by the
                    // frame's X component; Z errors are harmless here.
                    frames.measure_z_into(slot(qubit), outcome);
                    for (f, o) in failed.iter_mut().zip(outcome.iter()) {
                        *f |= o;
                    }
                    measured[slot(qubit)] = true;
                }
            }
        }
        self.close_batch(frames, measured, failed);
        failed.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Exposes one qubit slot to `reps` sampled blocks of `rounds`
    /// syndrome rounds each (the legacy [`Boundary::Full`] model,
    /// preserved bit-for-bit including its seed derivation).
    fn expose_legacy(
        &self,
        frames: &mut FrameBatch,
        blocks: &mut BlockScratchMap,
        slot: usize,
        rounds: usize,
        reps: u64,
        lanes: usize,
        instr_seed: u64,
    ) {
        let (z_block, x_block) = &self.blocks[&(rounds, Boundary::Full)];
        for rep in 0..reps {
            let rep_seed = splitmix64(instr_seed ^ splitmix64(0x5851_f42d ^ rep));
            // Z-basis guard failure = residual logical X error.
            let zs = blocks.entry((rounds, Boundary::Full, 0)).or_default();
            let x_flips = z_block.sample_failure_words_reusing(lanes, rep_seed, zs);
            frames.xor_x_words(slot, x_flips);
            let xs = blocks.entry((rounds, Boundary::Full, 1)).or_default();
            let z_flips =
                x_block.sample_failure_words_reusing(lanes, splitmix64(rep_seed ^ 0x9e37), xs);
            frames.xor_z_words(slot, z_flips);
        }
    }

    /// The legacy [`Boundary::Full`] replay: every timestep of every
    /// operation resamples a whole `d`-round memory experiment.
    fn run_batch_legacy(&self, lanes: usize, batch_seed: u64, scratch: &mut FrameScratch) -> u64 {
        let words = lanes.div_ceil(64).max(1);
        let n_slots = self.slots.len().max(1);
        scratch.rekey(self.identity);
        let FrameScratch {
            frames,
            failed,
            measured,
            outcome,
            blocks,
            ..
        } = scratch;
        frames.reset(n_slots, lanes);
        failed.clear();
        failed.resize(words, 0);
        measured.clear();
        measured.resize(n_slots, false);
        let slot = |q: LogicalId| self.slots[&q];
        for (idx, instr) in self.schedule.instrs().iter().enumerate() {
            let instr_seed = splitmix64(batch_seed ^ splitmix64(idx as u64));
            let span = instr.span();
            let d = self.schedule.config().d;
            match *instr {
                Instr::PageIn { qubit, .. } => frames.reset_qubit(slot(qubit)),
                Instr::PageOut { qubit, .. } => frames.reset_qubit(slot(qubit)),
                Instr::Correction { .. } => {}
                Instr::RefreshRound { qubit, rounds, .. } => {
                    self.expose_legacy(frames, blocks, slot(qubit), rounds, 1, lanes, instr_seed);
                }
                Instr::Logical1Q { qubit, gate, .. } => {
                    if gate == LogicalGate1Q::H {
                        frames.apply(CliffordGate::H(slot(qubit)));
                    }
                    self.expose_legacy(frames, blocks, slot(qubit), d, span, lanes, instr_seed);
                }
                Instr::TransversalCnot {
                    control, target, ..
                }
                | Instr::LatticeSurgeryCnot {
                    control, target, ..
                } => {
                    frames.apply(CliffordGate::Cnot(slot(control), slot(target)));
                    self.expose_legacy(frames, blocks, slot(control), d, span, lanes, instr_seed);
                    self.expose_legacy(
                        frames,
                        blocks,
                        slot(target),
                        d,
                        span,
                        lanes,
                        splitmix64(instr_seed ^ 0x7fb5),
                    );
                }
                Instr::SurgeryMerge { a, b, .. } => {
                    frames.apply(CliffordGate::Cnot(slot(a), slot(b)));
                    self.expose_legacy(frames, blocks, slot(a), d, span, lanes, instr_seed);
                    self.expose_legacy(
                        frames,
                        blocks,
                        slot(b),
                        d,
                        span,
                        lanes,
                        splitmix64(instr_seed ^ 0x7fb5),
                    );
                }
                Instr::SurgerySplit { a, b, .. } => {
                    self.expose_legacy(frames, blocks, slot(a), d, span, lanes, instr_seed);
                    self.expose_legacy(
                        frames,
                        blocks,
                        slot(b),
                        d,
                        span,
                        lanes,
                        splitmix64(instr_seed ^ 0x7fb5),
                    );
                }
                Instr::Move { qubit, .. } | Instr::ConsumeMagic { qubit, .. } => {
                    self.expose_legacy(frames, blocks, slot(qubit), d, span, lanes, instr_seed);
                }
                Instr::MeasureLogical { qubit, .. } => {
                    self.expose_legacy(frames, blocks, slot(qubit), d, span, lanes, instr_seed);
                    // A destructive Z readout is corrupted by the
                    // frame's X component; Z errors are harmless here.
                    frames.measure_z_into(slot(qubit), outcome);
                    for (f, o) in failed.iter_mut().zip(outcome.iter()) {
                        *f |= o;
                    }
                    measured[slot(qubit)] = true;
                }
            }
        }
        self.close_batch(frames, measured, failed);
        failed.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Qubits still live at the end of the program must carry the
    /// identity frame, else the prepared logical state is corrupted.
    fn close_batch(&self, frames: &FrameBatch, measured: &[bool], failed: &mut [u64]) {
        for &s in self.slots.values() {
            if measured[s] {
                continue;
            }
            for (w, f) in failed.iter_mut().enumerate() {
                *f |= frames.x_words(s)[w] | frames.z_words(s)[w];
            }
        }
    }
}

// ---------------------------------------------------------------------
// Program sweeps on the work-stealing engine
// ---------------------------------------------------------------------

/// Names of the registered program workloads (`SweepSpec::programs`).
/// `ghz<N>` and `adder<N>` accept any width.
pub const PROGRAM_NAMES: [&str; 4] = ["ghz4", "ghz8", "teleport", "adder2"];

/// Looks up a program workload by registry name.
pub fn program_by_name(name: &str) -> Option<LogicalCircuit> {
    if let Some(n) = name.strip_prefix("ghz") {
        let n: usize = n.parse().ok()?;
        return (n >= 2).then(|| LogicalCircuit::ghz(n));
    }
    if let Some(n) = name.strip_prefix("adder") {
        let n: usize = n.parse().ok()?;
        return (n >= 1).then(|| LogicalCircuit::adder(n));
    }
    (name == "teleport").then(LogicalCircuit::teleport)
}

/// The machine shape a program sweep point compiles onto: the point's
/// setup picks embedding + refresh policy, `d`/`k` come straight from
/// the grid, and the stack count grows to fit the program (2 stacks per
/// row, one mode per stack kept free).
///
/// # Panics
///
/// Panics when `point.k < 2`: the machine needs one storage + one free
/// mode per stack, and silently simulating a deeper stack than the
/// point's `k` column records would mislabel the artifact. Program
/// specs must set `SweepSpec::ks` explicitly (the spec default of
/// `ks = [1]` is a memory-experiment convention).
pub fn machine_config_for_point(point: &SweepPoint, num_qubits: usize) -> MachineConfig {
    let (embedding, refresh) = config_for_setup(point.setup);
    assert!(
        point.k >= 2,
        "program sweep points need k >= 2 (one storage + one free mode per stack);          got k = {} — set SweepSpec::ks explicitly",
        point.k
    );
    let k = point.k;
    let per_stack = k - 1;
    let stacks = num_qubits.div_ceil(per_stack).max(4);
    MachineConfig {
        stacks_x: 2,
        stacks_y: stacks.div_ceil(2) as u32,
        k,
        d: point.d,
        embedding,
        refresh,
        prefer_transversal: true,
        hw: HardwareParams::with_memory(),
    }
}

/// [`SweepExecutor`] running program workloads through
/// [`FramePrepared`]: `prepare` compiles the point's program at the
/// point's distance/depth and builds the block experiments once;
/// `run_chunk` replays seeded shot chunks.
///
/// Defaults to [`Boundary::MidCircuit`] blocks — the quantitative
/// program-level fidelity model; set `boundary` to [`Boundary::Full`]
/// to sweep the legacy whole-memory-experiment approximation (the
/// `prog1` binary's `--boundary` flag).
///
/// # Panics
///
/// `prepare` panics when the point carries no program name or an
/// unregistered one — specs are validated at construction, so this
/// mirrors the unknown-knob contract of `vlq-qec`'s `MemoryExecutor`.
#[derive(Clone, Debug)]
pub struct ProgramSweepExecutor {
    /// Block boundary every exposure is sampled under.
    pub boundary: Boundary,
    /// In-block worker policy every chunk is replayed under.
    pub parallelism: Parallelism,
}

impl Default for ProgramSweepExecutor {
    fn default() -> Self {
        ProgramSweepExecutor {
            boundary: Boundary::MidCircuit,
            parallelism: Parallelism::serial(),
        }
    }
}

impl ProgramSweepExecutor {
    /// An executor sampling under `boundary`.
    pub fn new(boundary: Boundary) -> Self {
        ProgramSweepExecutor {
            boundary,
            ..Self::default()
        }
    }

    /// Sets the in-block worker policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

impl SweepExecutor for ProgramSweepExecutor {
    type Prepared = FramePrepared;

    fn prepare(&self, point: &SweepPoint) -> FramePrepared {
        let name = point
            .program
            .as_deref()
            .expect("program sweep point without a program name");
        let circuit = program_by_name(name)
            .unwrap_or_else(|| panic!("sweep point names unknown program {name:?}"));
        let config = machine_config_for_point(point, circuit.num_qubits);
        let compiled = compile(&circuit, config).expect("registered programs fit their machines");
        FramePrepared::new(compiled.schedule, point.p, point.decoder, self.boundary)
    }

    fn run_chunk(
        &self,
        prepared: &FramePrepared,
        _point: &SweepPoint,
        shots: u64,
        seed: u64,
    ) -> u64 {
        prepared.run_failures_par(shots, seed, &self.parallelism)
    }

    fn run_chunk_recorded(
        &self,
        prepared: &FramePrepared,
        _point: &SweepPoint,
        shots: u64,
        seed: u64,
        recorder: &Recorder,
    ) -> u64 {
        prepared.run_failures_recorded_par(shots, seed, recorder, &self.parallelism)
    }
}

/// A single-qubit idle-memory schedule: one logical qubit paged in and
/// refreshed for `cycles` scheduler cycles, then measured.
///
/// Replaying it through [`FrameExecutor`] with [`Boundary::Full`] runs
/// the same Monte-Carlo blocks as `vlq_qec::run_memory_experiment` —
/// the memory experiment is the degenerate program, which is the point
/// of the shared execution path; the default mid-circuit boundary
/// replays the same schedule charging only its steady-state exposure
/// (see `docs/executors.md`).
pub fn memory_schedule(config: MachineConfig, cycles: u64) -> Schedule {
    let mut machine = crate::machine::VlqMachine::new(config);
    let q = machine.alloc().expect("empty machine has room");
    machine.advance(cycles);
    machine.measure(q).expect("qubit is alive");
    machine.into_schedule()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::VlqMachine;
    use vlq_arch::address::StackCoord;

    #[test]
    fn setup_mapping_round_trips() {
        for setup in Setup::ALL {
            let (embedding, refresh) = config_for_setup(setup);
            let cfg = MachineConfig {
                embedding,
                refresh,
                ..MachineConfig::compact_demo()
            };
            assert_eq!(setup_for_config(&cfg), setup);
        }
    }

    #[test]
    fn cost_executor_rejects_invalid_schedules() {
        let mut s = Schedule::new(MachineConfig::compact_demo());
        s.push(Instr::Correction {
            qubit: LogicalId(3),
            t: 0,
        });
        assert!(matches!(
            CostExecutor.run(&s),
            Err(MachineError::Schedule { .. })
        ));
    }

    #[test]
    fn trace_has_one_row_per_instruction() {
        let mut m = VlqMachine::new(MachineConfig::compact_demo());
        let a = m.alloc_in(StackCoord::new(0, 0)).unwrap();
        let b = m.alloc_in(StackCoord::new(0, 0)).unwrap();
        m.cnot(a, b).unwrap();
        let schedule = m.into_schedule();
        let table = TraceExecutor.run(&schedule).unwrap();
        assert_eq!(table.len(), schedule.len());
        let mut csv = Vec::new();
        table.write_csv(&mut csv).unwrap();
        let text = String::from_utf8(csv).unwrap();
        assert!(text.starts_with("i,t,span,instr,"));
        assert!(text.contains("transversal-cnot"));
        assert!(text.contains("page-in"));
    }

    #[test]
    fn program_registry_parses_names() {
        assert_eq!(program_by_name("ghz4").unwrap().num_qubits, 4);
        assert_eq!(program_by_name("ghz12").unwrap().num_qubits, 12);
        assert_eq!(program_by_name("teleport").unwrap().num_qubits, 3);
        assert!(program_by_name("adder2").unwrap().t_count() > 0);
        assert!(program_by_name("ghz1").is_none());
        assert!(program_by_name("bogus").is_none());
        for name in PROGRAM_NAMES {
            assert!(program_by_name(name).is_some(), "{name} not resolvable");
        }
    }

    #[test]
    fn noiseless_frame_replay_never_fails() {
        let compiled = compile(&LogicalCircuit::ghz(4), MachineConfig::compact_demo()).unwrap();
        let report = FrameExecutor::at_scale(0.0)
            .with_shots(256)
            .run(&compiled.schedule)
            .unwrap();
        assert_eq!(report.failures, 0);
        assert_eq!(report.shots, 256);
        assert!(report.blocks_per_shot > 0);
    }

    #[test]
    fn frame_replay_is_deterministic_and_batch_independent() {
        let compiled = compile(&LogicalCircuit::ghz(3), MachineConfig::compact_demo()).unwrap();
        // p low enough that neither boundary mode saturates (at
        // saturation two seeds can collide on the same failure count).
        for boundary in [Boundary::MidCircuit, Boundary::Full] {
            let prepared = FramePrepared::new(
                compiled.schedule.clone(),
                1e-3,
                DecoderKind::UnionFind,
                boundary,
            );
            let a = prepared.run_failures(300, 7);
            let b = prepared.run_failures(300, 7);
            assert_eq!(a, b, "{boundary}: runs must reproduce");
            assert_ne!(
                prepared.run_failures(300, 8),
                a,
                "{boundary}: seed must matter"
            );
        }
    }

    #[test]
    fn mid_circuit_blocks_shrink_program_error() {
        // The whole point of the boundary redesign: replaying the same
        // schedule with exposure-sized mid-circuit blocks must yield
        // strictly less error than the legacy model that resamples a
        // full memory experiment (noisy prep + readout included) per
        // timestep.
        // p low enough that neither model saturates — at saturation
        // both pin near shots and the comparison is vacuous.
        let compiled = compile(&LogicalCircuit::ghz(3), MachineConfig::compact_demo()).unwrap();
        let run = |boundary: Boundary| {
            FrameExecutor::at_scale(1e-3)
                .with_shots(1500)
                .with_seed(11)
                .with_boundary(boundary)
                .run(&compiled.schedule)
                .unwrap()
                .failures
        };
        let (mid, full) = (run(Boundary::MidCircuit), run(Boundary::Full));
        assert!(
            mid < full,
            "mid-circuit {mid} failures !< legacy full {full}"
        );
    }

    #[test]
    fn surgery_merge_propagates_errors_between_patches() {
        // A/B with identical exposure structure: both schedules refresh
        // patch `a` five times, run one span-1 surgery primitive over
        // (a, b), read out `b`, and discard `a` unmeasured. The merge
        // propagates a's accumulated X errors into b's readout; the
        // split exposes identically but propagates nothing.
        use vlq_arch::address::{ModeIndex, VirtAddr};
        let build = |merge: bool| {
            let cfg = MachineConfig::compact_demo();
            let (a, b) = (LogicalId(0), LogicalId(1));
            let addr_a = VirtAddr::new(StackCoord::new(0, 0), ModeIndex(0));
            let addr_b = VirtAddr::new(StackCoord::new(0, 0), ModeIndex(1));
            let mut s = Schedule::new(cfg);
            s.push(Instr::PageIn {
                qubit: a,
                addr: addr_a,
                t: 0,
            });
            s.push(Instr::PageIn {
                qubit: b,
                addr: addr_b,
                t: 0,
            });
            for t in 1..=5 {
                s.push(Instr::RefreshRound {
                    stack: addr_a.stack,
                    qubit: a,
                    rounds: 3,
                    t,
                });
            }
            s.push(if merge {
                Instr::SurgeryMerge { a, b, t: 6 }
            } else {
                Instr::SurgerySplit { a, b, t: 6 }
            });
            s.push(Instr::MeasureLogical {
                qubit: b,
                addr: addr_b,
                t: 7,
            });
            s.push(Instr::PageOut {
                qubit: b,
                addr: addr_b,
                t: 8,
            });
            s.push(Instr::PageOut {
                qubit: a,
                addr: addr_a,
                t: 8,
            });
            s
        };
        let run = |merge: bool| {
            FrameExecutor::at_scale(5e-3)
                .with_shots(4000)
                .with_seed(17)
                .run(&build(merge))
                .expect("valid schedule")
                .failures
        };
        let (with_merge, with_split) = (run(true), run(false));
        assert!(
            with_merge > with_split,
            "merge must copy a's errors into b's readout: merge {with_merge} !> split {with_split}"
        );
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn program_points_with_memory_default_depth_are_rejected() {
        // ks = [1] is the memory-experiment default; simulating a deeper
        // stack than the recorded k would mislabel the artifact.
        let pt = SweepPoint {
            setup: Setup::CompactInterleaved,
            basis: vlq_surface::schedule::Basis::Z,
            d: 3,
            p: 1e-3,
            k: 1,
            rounds: None,
            decoder: DecoderKind::UnionFind,
            shots: 10,
            knob: None,
            program: Some("ghz3".to_string()),
        };
        machine_config_for_point(&pt, 3);
    }

    #[test]
    fn memory_schedule_degenerates_to_the_memory_experiment_shape() {
        let schedule = memory_schedule(MachineConfig::compact_demo(), 10);
        schedule.validate().unwrap();
        let refreshes = schedule.count(|i| matches!(i, Instr::RefreshRound { .. }));
        assert!(refreshes >= 10, "one refresh pass per idle cycle");
        assert_eq!(
            schedule.count(|i| matches!(i, Instr::MeasureLogical { .. })),
            1
        );
    }
}
