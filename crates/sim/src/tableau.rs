//! Aaronson-Gottesman (CHP) stabilizer tableau simulator with exact phase
//! tracking.
//!
//! Rows are stored as phase-tracked [`PauliString`]s, so row products use
//! the exact Pauli algebra instead of the traditional 2-bit phase
//! bookkeeping. The simulator supports measurement of arbitrary Pauli
//! observables, which is what schedule validation and logical-operator
//! verification need.
//!
//! Performance note: this engine is used for *verification*, not for
//! Monte Carlo — the bit-parallel [`crate::frame`] engine handles
//! sampling. Tableau operations are `O(n)` per gate and `O(n^2)` per
//! measurement, which is ample for code distances up to ~11.

use vlq_pauli::{Pauli, PauliString};

use crate::CliffordGate;

/// A stabilizer state on `n` qubits in tableau form.
///
/// The tableau holds `n` destabilizer rows and `n` stabilizer rows; row
/// `i` of each set pair up (`destab[i]` anticommutes with `stab[i]` and
/// commutes with every other row).
///
/// # Examples
///
/// ```
/// use vlq_sim::{CliffordGate, Tableau};
/// use vlq_pauli::PauliString;
///
/// // Prepare a Bell pair and check the stabilizers are XX and ZZ.
/// let mut t = Tableau::new(2);
/// t.apply(CliffordGate::H(0));
/// t.apply(CliffordGate::Cnot(0, 1));
/// let xx = PauliString::from_str_sign("+XX").unwrap();
/// let zz = PauliString::from_str_sign("+ZZ").unwrap();
/// assert!(t.is_stabilized_by(&xx));
/// assert!(t.is_stabilized_by(&zz));
/// ```
#[derive(Clone, Debug)]
pub struct Tableau {
    n: usize,
    destab: Vec<PauliString>,
    stab: Vec<PauliString>,
}

/// Outcome of a Pauli measurement on a stabilizer state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeasureOutcome {
    /// The observable was already determined; the bool is the outcome
    /// (`true` = eigenvalue −1, i.e. classical result 1).
    Deterministic(bool),
    /// The observable was random; the bool is the outcome that was chosen
    /// and projected into.
    Random(bool),
}

impl MeasureOutcome {
    /// The measurement bit regardless of determinism.
    pub fn bit(self) -> bool {
        match self {
            MeasureOutcome::Deterministic(b) | MeasureOutcome::Random(b) => b,
        }
    }

    /// Returns `true` if the outcome was already determined by the state.
    pub fn is_deterministic(self) -> bool {
        matches!(self, MeasureOutcome::Deterministic(_))
    }
}

impl Tableau {
    /// Creates the all-zeros state `|0...0>` on `n` qubits.
    pub fn new(n: usize) -> Self {
        let destab = (0..n)
            .map(|i| PauliString::single(n, i, Pauli::X))
            .collect();
        let stab = (0..n)
            .map(|i| PauliString::single(n, i, Pauli::Z))
            .collect();
        Tableau { n, destab, stab }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The current stabilizer generators (signs included).
    pub fn stabilizers(&self) -> &[PauliString] {
        &self.stab
    }

    /// Applies a Clifford gate by conjugating every row.
    pub fn apply(&mut self, gate: CliffordGate) {
        for row in self.destab.iter_mut().chain(self.stab.iter_mut()) {
            conjugate_row(row, gate);
        }
    }

    /// Applies a sequence of gates.
    pub fn apply_all<I: IntoIterator<Item = CliffordGate>>(&mut self, gates: I) {
        for g in gates {
            self.apply(g);
        }
    }

    /// Measures the single-qubit `Z` observable on `qubit`.
    ///
    /// `random_bit` supplies the outcome when the measurement is random
    /// (pass a closure over your RNG, or a constant for post-selection).
    pub fn measure_z(&mut self, qubit: usize, random_bit: impl FnOnce() -> bool) -> MeasureOutcome {
        let obs = PauliString::single(self.n, qubit, Pauli::Z);
        self.measure_pauli(&obs, random_bit)
    }

    /// Resets `qubit` to `|0>` (measure, then flip if needed).
    pub fn reset_z(&mut self, qubit: usize, random_bit: impl FnOnce() -> bool) {
        if self.measure_z(qubit, random_bit).bit() {
            self.apply(CliffordGate::X(qubit));
        }
    }

    /// Measures an arbitrary Pauli observable.
    ///
    /// # Panics
    ///
    /// Panics if `observable` has an imaginary phase (not Hermitian) or a
    /// length other than the qubit count.
    pub fn measure_pauli(
        &mut self,
        observable: &PauliString,
        random_bit: impl FnOnce() -> bool,
    ) -> MeasureOutcome {
        assert_eq!(observable.len(), self.n, "observable length mismatch");
        assert!(
            observable.phase().is_multiple_of(2),
            "observable must be Hermitian (real sign)"
        );
        // Random case: some stabilizer anticommutes with the observable.
        let anti_stab = (0..self.n).find(|&j| self.stab[j].anticommutes_with(observable));
        if let Some(p) = anti_stab {
            let pivot = self.stab[p].clone();
            for i in 0..self.n {
                if i != p && self.stab[i].anticommutes_with(observable) {
                    self.stab[i].mul_assign(&pivot);
                }
                if self.destab[i].anticommutes_with(observable) && (i != p) {
                    self.destab[i].mul_assign(&pivot);
                }
            }
            // The destabilizer paired with row p becomes the old stabilizer.
            self.destab[p] = pivot;
            let outcome = random_bit();
            let mut new_stab = observable.clone();
            if outcome {
                // Negative eigenvalue: multiply sign by -1.
                let minus = minus_identity(self.n);
                new_stab.mul_assign(&minus);
            }
            self.stab[p] = new_stab;
            return MeasureOutcome::Random(outcome);
        }
        // Deterministic case: express the observable as a product of
        // stabilizers using the destabilizer pairing.
        let mut scratch = PauliString::identity(self.n);
        for k in 0..self.n {
            if self.destab[k].anticommutes_with(observable) {
                scratch.mul_assign(&self.stab[k]);
            }
        }
        debug_assert_eq!(
            (scratch.x_plane(), scratch.z_plane()),
            (observable.x_plane(), observable.z_plane()),
            "deterministic observable must lie in the stabilizer group"
        );
        let rel = (scratch.phase() + 4 - observable.phase()) % 4;
        debug_assert!(rel.is_multiple_of(2), "relative phase must be real");
        MeasureOutcome::Deterministic(rel == 2)
    }

    /// Expectation of a Pauli observable: `Some(false)` for +1,
    /// `Some(true)` for −1, `None` when the outcome would be random.
    ///
    /// Does not modify the state.
    pub fn expectation(&self, observable: &PauliString) -> Option<bool> {
        if (0..self.n).any(|j| self.stab[j].anticommutes_with(observable)) {
            return None;
        }
        let mut scratch = PauliString::identity(self.n);
        for k in 0..self.n {
            if self.destab[k].anticommutes_with(observable) {
                scratch.mul_assign(&self.stab[k]);
            }
        }
        let rel = (scratch.phase() + 4 - observable.phase()) % 4;
        Some(rel == 2)
    }

    /// Returns `true` if `observable` (with its sign) is in the stabilizer
    /// group of the state.
    pub fn is_stabilized_by(&self, observable: &PauliString) -> bool {
        self.expectation(observable) == Some(false)
    }

    /// Applies a Pauli string as a gate (deterministic error injection).
    pub fn apply_pauli(&mut self, p: &PauliString) {
        assert_eq!(p.len(), self.n, "pauli length mismatch");
        for (q, site) in p.iter_support() {
            match site {
                Pauli::X => self.apply(CliffordGate::X(q)),
                Pauli::Y => self.apply(CliffordGate::Y(q)),
                Pauli::Z => self.apply(CliffordGate::Z(q)),
                Pauli::I => {}
            }
        }
    }

    /// Internal consistency check: destabilizer/stabilizer pairing and
    /// commutation structure. Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for i in 0..self.n {
            if !self.destab[i].anticommutes_with(&self.stab[i]) {
                return Err(format!("destab[{i}] must anticommute with stab[{i}]"));
            }
            for j in 0..self.n {
                if i != j {
                    if self.destab[i].anticommutes_with(&self.stab[j]) {
                        return Err(format!("destab[{i}] must commute with stab[{j}]"));
                    }
                    if self.stab[i].anticommutes_with(&self.stab[j]) {
                        return Err(format!("stab[{i}] must commute with stab[{j}]"));
                    }
                    if self.destab[i].anticommutes_with(&self.destab[j]) {
                        return Err(format!("destab[{i}] must commute with destab[{j}]"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// `-I` on `n` qubits (used to flip a row's sign).
fn minus_identity(n: usize) -> PauliString {
    PauliString::from_str_sign(&format!("-{}", "I".repeat(n))).expect("valid pauli literal")
}

/// Conjugates a Pauli row by a Clifford gate: `row <- g row g^dag`.
///
/// The row is in the `i^phase * X(a) Z(b)` convention of
/// [`PauliString`]; the update rules below are derived in that
/// convention (see unit tests which cross-check against the state-vector
/// simulator).
pub fn conjugate_row(row: &mut PauliString, gate: CliffordGate) {
    use CliffordGate::*;
    match gate {
        H(q) => {
            let (x, z) = (row.x_plane().get(q), row.z_plane().get(q));
            // X <-> Z, Y -> -Y.
            let p = row.pauli(q);
            row.set_pauli(
                q,
                match p {
                    Pauli::X => Pauli::Z,
                    Pauli::Z => Pauli::X,
                    other => other,
                },
            );
            if x && z {
                flip_sign(row);
            }
        }
        S(q) => {
            // X -> Y, Y -> -X, Z -> Z.
            match row.pauli(q) {
                Pauli::X => row.set_pauli(q, Pauli::Y),
                Pauli::Y => {
                    row.set_pauli(q, Pauli::X);
                    flip_sign(row);
                }
                _ => {}
            }
        }
        SDag(q) => {
            // X -> -Y, Y -> X, Z -> Z.
            match row.pauli(q) {
                Pauli::X => {
                    row.set_pauli(q, Pauli::Y);
                    flip_sign(row);
                }
                Pauli::Y => row.set_pauli(q, Pauli::X),
                _ => {}
            }
        }
        X(q) => {
            if row.z_plane().get(q) {
                flip_sign(row);
            }
        }
        Y(q) => {
            if row.x_plane().get(q) ^ row.z_plane().get(q) {
                flip_sign(row);
            }
        }
        Z(q) => {
            if row.x_plane().get(q) {
                flip_sign(row);
            }
        }
        Cnot(c, t) => {
            // Sitewise: Pc⊗Pt -> use the exact product formula via small
            // lookup on the two sites, tracking sign.
            let pc = row.pauli(c);
            let pt = row.pauli(t);
            let (npc, npt, sign) = cnot_conjugation(pc, pt);
            row.set_pauli(c, npc);
            row.set_pauli(t, npt);
            if sign {
                flip_sign(row);
            }
        }
        Cz(a, b) => {
            let pa = row.pauli(a);
            let pb = row.pauli(b);
            let (npa, npb, sign) = cz_conjugation(pa, pb);
            row.set_pauli(a, npa);
            row.set_pauli(b, npb);
            if sign {
                flip_sign(row);
            }
        }
        Swap(a, b) => {
            let pa = row.pauli(a);
            let pb = row.pauli(b);
            row.set_pauli(a, pb);
            row.set_pauli(b, pa);
        }
        ISwap(a, b) => {
            // iSWAP = SWAP · CZ · (S ⊗ S), rightmost first.
            conjugate_row(row, CliffordGate::S(a));
            conjugate_row(row, CliffordGate::S(b));
            conjugate_row(row, CliffordGate::Cz(a, b));
            conjugate_row(row, CliffordGate::Swap(a, b));
        }
    }
}

fn flip_sign(row: &mut PauliString) {
    let minus = minus_identity(row.len());
    row.mul_assign(&minus);
}

/// CNOT conjugation on a two-site Pauli: returns (control', target', sign
/// flip). Derived from `X_c -> X_c X_t`, `Z_t -> Z_c Z_t`,
/// `Y_c -> Y_c X_t`, `Y_t -> Z_c Y_t` with exact reordering signs.
fn cnot_conjugation(pc: Pauli, pt: Pauli) -> (Pauli, Pauli, bool) {
    use Pauli::*;
    // Table indexed by (control, target). Verified against the
    // state-vector simulator in tests.
    match (pc, pt) {
        (I, I) => (I, I, false),
        (I, X) => (I, X, false),
        (I, Y) => (Z, Y, false),
        (I, Z) => (Z, Z, false),
        (X, I) => (X, X, false),
        (X, X) => (X, I, false),
        (X, Y) => (Y, Z, false),
        (X, Z) => (Y, Y, true),
        (Y, I) => (Y, X, false),
        (Y, X) => (Y, I, false),
        (Y, Y) => (X, Z, true),
        (Y, Z) => (X, Y, false),
        (Z, I) => (Z, I, false),
        (Z, X) => (Z, X, false),
        (Z, Y) => (I, Y, false),
        (Z, Z) => (I, Z, false),
    }
}

/// CZ conjugation on a two-site Pauli: returns (a', b', sign flip).
fn cz_conjugation(pa: Pauli, pb: Pauli) -> (Pauli, Pauli, bool) {
    use Pauli::*;
    match (pa, pb) {
        (I, I) => (I, I, false),
        (I, X) => (Z, X, false),
        (I, Y) => (Z, Y, false),
        (I, Z) => (I, Z, false),
        (X, I) => (X, Z, false),
        (X, X) => (Y, Y, false),
        (X, Y) => (Y, X, true),
        (X, Z) => (X, I, false),
        (Y, I) => (Y, Z, false),
        (Y, X) => (X, Y, true),
        (Y, Y) => (X, X, false),
        (Y, Z) => (Y, I, false),
        (Z, I) => (Z, I, false),
        (Z, X) => (I, X, false),
        (Z, Y) => (I, Y, false),
        (Z, Z) => (Z, Z, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        PauliString::from_str_sign(s).unwrap()
    }

    #[test]
    fn fresh_state_is_all_zero() {
        let t = Tableau::new(3);
        t.check_invariants().unwrap();
        for q in 0..3 {
            let z = PauliString::single(3, q, Pauli::Z);
            assert_eq!(t.expectation(&z), Some(false)); // +Z => |0>
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut t = Tableau::new(1);
        t.apply(CliffordGate::X(0));
        let m = t.measure_z(0, || panic!("should be deterministic"));
        assert_eq!(m, MeasureOutcome::Deterministic(true));
    }

    #[test]
    fn h_gives_random_then_fixed() {
        let mut t = Tableau::new(1);
        t.apply(CliffordGate::H(0));
        let m = t.measure_z(0, || true);
        assert_eq!(m, MeasureOutcome::Random(true));
        // Second measurement is now deterministic and equal.
        let m2 = t.measure_z(0, || panic!("deterministic now"));
        assert_eq!(m2, MeasureOutcome::Deterministic(true));
        t.check_invariants().unwrap();
    }

    #[test]
    fn bell_pair_correlations() {
        let mut t = Tableau::new(2);
        t.apply(CliffordGate::H(0));
        t.apply(CliffordGate::Cnot(0, 1));
        assert!(t.is_stabilized_by(&ps("+XX")));
        assert!(t.is_stabilized_by(&ps("+ZZ")));
        assert!(!t.is_stabilized_by(&ps("-XX")));
        assert_eq!(t.expectation(&ps("+ZI")), None);
        // Measure qubit 0, then qubit 1 must agree.
        let a = t.measure_z(0, || true).bit();
        let b = t.measure_z(1, || panic!("correlated")).bit();
        assert_eq!(a, b);
    }

    #[test]
    fn ghz_parity() {
        let mut t = Tableau::new(3);
        t.apply(CliffordGate::H(0));
        t.apply(CliffordGate::Cnot(0, 1));
        t.apply(CliffordGate::Cnot(1, 2));
        assert!(t.is_stabilized_by(&ps("+XXX")));
        assert!(t.is_stabilized_by(&ps("+ZZI")));
        assert!(t.is_stabilized_by(&ps("+IZZ")));
        t.check_invariants().unwrap();
    }

    #[test]
    fn s_gate_turns_x_into_y() {
        let mut t = Tableau::new(1);
        t.apply(CliffordGate::H(0)); // |+>, stabilized by +X
        assert!(t.is_stabilized_by(&ps("+X")));
        t.apply(CliffordGate::S(0)); // |+i>, stabilized by +Y
        assert!(t.is_stabilized_by(&ps("+Y")));
        t.apply(CliffordGate::S(0)); // |->, stabilized by -X
        assert!(t.is_stabilized_by(&ps("-X")));
        t.apply(CliffordGate::SDag(0));
        assert!(t.is_stabilized_by(&ps("+Y")));
    }

    #[test]
    fn cz_phase_kickback() {
        // CZ on |+>|1> flips the first qubit to |->.
        let mut t = Tableau::new(2);
        t.apply(CliffordGate::H(0));
        t.apply(CliffordGate::X(1));
        t.apply(CliffordGate::Cz(0, 1));
        assert!(t.is_stabilized_by(&ps("-XI")));
    }

    #[test]
    fn swap_moves_state() {
        let mut t = Tableau::new(2);
        t.apply(CliffordGate::X(0));
        t.apply(CliffordGate::Swap(0, 1));
        assert!(!t.measure_z(0, || panic!()).bit());
        assert!(t.measure_z(1, || panic!()).bit());
    }

    #[test]
    fn iswap_moves_excitation() {
        // iSWAP exchanges |01> and |10> (up to phase): Z-basis populations
        // move across.
        let mut t = Tableau::new(2);
        t.apply(CliffordGate::X(0));
        t.apply(CliffordGate::ISwap(0, 1));
        assert!(!t.measure_z(0, || panic!()).bit());
        assert!(t.measure_z(1, || panic!()).bit());
        t.check_invariants().unwrap();
    }

    #[test]
    fn iswap_phase_structure() {
        // iSWAP X⊗I iSWAP† = -(Z⊗Y)? Verify via conjugate_row against
        // first principles: iSWAP = SWAP · CZ · (S⊗S).
        // S⊗S: X0 -> Y0; CZ: Y0 -> Y0 Z1; SWAP: -> Z0 Y1... with signs
        // tracked by the implementation; here we simply check conjugation
        // preserves the group structure and is an involution on Z⊗Z.
        let mut row = ps("+ZZ");
        conjugate_row(&mut row, CliffordGate::ISwap(0, 1));
        assert_eq!(row, ps("+ZZ"));
        let mut row = ps("+XI");
        conjugate_row(&mut row, CliffordGate::ISwap(0, 1));
        // Result must anticommute with Z on qubit 1 (X moved across).
        assert!(row.anticommutes_with(&ps("+IZ")));
    }

    #[test]
    fn measurement_collapse_updates_invariants() {
        let mut t = Tableau::new(4);
        t.apply(CliffordGate::H(0));
        t.apply(CliffordGate::Cnot(0, 1));
        t.apply(CliffordGate::Cnot(0, 2));
        t.apply(CliffordGate::Cnot(0, 3));
        let _ = t.measure_z(2, || false);
        t.check_invariants().unwrap();
        // All qubits now agree with qubit 2's outcome (GHZ collapse).
        for q in 0..4 {
            assert!(!t.measure_z(q, || panic!()).bit());
        }
    }

    #[test]
    fn measure_multi_qubit_pauli() {
        // Measuring ZZ on |00> is deterministic +1; measuring XX is random
        // and repeatable.
        let mut t = Tableau::new(2);
        let zz = ps("+ZZ");
        assert_eq!(
            t.measure_pauli(&zz, || panic!()),
            MeasureOutcome::Deterministic(false)
        );
        let xx = ps("+XX");
        let m = t.measure_pauli(&xx, || true);
        assert_eq!(m, MeasureOutcome::Random(true));
        assert_eq!(
            t.measure_pauli(&xx, || panic!()),
            MeasureOutcome::Deterministic(true)
        );
        // ZZ is still deterministic +1 (commutes with XX).
        assert_eq!(
            t.measure_pauli(&zz, || panic!()),
            MeasureOutcome::Deterministic(false)
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn reset_forces_zero() {
        let mut t = Tableau::new(2);
        t.apply(CliffordGate::H(0));
        t.apply(CliffordGate::Cnot(0, 1));
        t.reset_z(0, || true);
        assert!(!t.measure_z(0, || panic!()).bit());
        t.check_invariants().unwrap();
    }

    #[test]
    fn apply_pauli_injects_errors() {
        let mut t = Tableau::new(3);
        t.apply_pauli(&ps("XIX"));
        assert!(t.measure_z(0, || panic!()).bit());
        assert!(!t.measure_z(1, || panic!()).bit());
        assert!(t.measure_z(2, || panic!()).bit());
    }

    /// Ground-truth check of the conjugation rules: for every gate `G`
    /// and two-qubit Pauli `P`, the matrix of `conjugate_row(P, G)` must
    /// equal `G P G†` computed with the state-vector simulator.
    #[test]
    fn conjugation_matches_statevector() {
        use crate::statevector::{StateVector, C64};

        // Matrix of an operator O on 2 qubits via its action on basis
        // states: column j = O |j>.
        fn operator_columns(apply: &dyn Fn(&mut StateVector)) -> Vec<Vec<C64>> {
            (0..4usize)
                .map(|j| {
                    let mut sv = StateVector::new(2);
                    for q in 0..2 {
                        if (j >> q) & 1 == 1 {
                            sv.apply(CliffordGate::X(q));
                        }
                    }
                    apply(&mut sv);
                    sv.amplitudes().to_vec()
                })
                .collect()
        }

        let gates = [
            CliffordGate::H(0),
            CliffordGate::H(1),
            CliffordGate::S(0),
            CliffordGate::SDag(0),
            CliffordGate::X(0),
            CliffordGate::Y(1),
            CliffordGate::Z(0),
            CliffordGate::Cnot(0, 1),
            CliffordGate::Cnot(1, 0),
            CliffordGate::Cz(0, 1),
            CliffordGate::Swap(0, 1),
            CliffordGate::ISwap(0, 1),
        ];
        for gate in gates {
            for pa in Pauli::ALL {
                for pb in Pauli::ALL {
                    let mut row = PauliString::identity(2);
                    row.set_pauli(0, pa);
                    row.set_pauli(1, pb);
                    let original = row.clone();
                    conjugate_row(&mut row, gate);

                    // LHS: matrix of the conjugated row.
                    let conj_row = row.clone();
                    let lhs = operator_columns(&|sv| sv.apply_pauli(&conj_row));
                    // RHS: G P G† = apply G†... easier: G P then G† on the
                    // left: column j of G P G† is G P G† |j>.
                    let orig = original.clone();
                    let rhs = operator_columns(&|sv| {
                        apply_inverse(sv, gate);
                        sv.apply_pauli(&orig);
                        sv.apply(gate);
                    });
                    for j in 0..4 {
                        for i in 0..4 {
                            let d = lhs[j][i] - rhs[j][i];
                            assert!(
                                d.abs() < 1e-10,
                                "gate {gate:?}, pauli ({pa:?},{pb:?}), entry ({i},{j})"
                            );
                        }
                    }
                }
            }
        }

        fn apply_inverse(sv: &mut StateVector, gate: CliffordGate) {
            match gate {
                CliffordGate::S(q) => sv.apply(CliffordGate::SDag(q)),
                CliffordGate::SDag(q) => sv.apply(CliffordGate::S(q)),
                CliffordGate::ISwap(a, b) => {
                    // iSWAP† = iSWAP^3 (iSWAP has order 4 up to phase);
                    // apply the decomposition inverse instead:
                    // (SWAP·CZ·(S⊗S))† = (S†⊗S†)·CZ·SWAP.
                    sv.apply(CliffordGate::Swap(a, b));
                    sv.apply(CliffordGate::Cz(a, b));
                    sv.apply(CliffordGate::SDag(a));
                    sv.apply(CliffordGate::SDag(b));
                }
                g => sv.apply(g), // H, X, Y, Z, CNOT, CZ, SWAP self-inverse
            }
        }
    }

    #[test]
    fn invariants_hold_under_random_circuits() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 6;
        let mut t = Tableau::new(n);
        for _ in 0..200 {
            let choice = rng.random_range(0..7);
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n);
            while b == a {
                b = rng.random_range(0..n);
            }
            let gate = match choice {
                0 => CliffordGate::H(a),
                1 => CliffordGate::S(a),
                2 => CliffordGate::Cnot(a, b),
                3 => CliffordGate::Cz(a, b),
                4 => CliffordGate::Swap(a, b),
                5 => CliffordGate::ISwap(a, b),
                _ => CliffordGate::X(a),
            };
            t.apply(gate);
            if choice == 6 {
                let bit = rng.random::<bool>();
                let _ = t.measure_z(a, || bit);
            }
        }
        t.check_invariants().unwrap();
    }
}
