//! Checks the paper's headline architectural claims (DESIGN.md items C1,
//! C2, A2): transversal CNOT speed and verification, hardware savings,
//! smallest Compact instance, and the merge-direction connectivity
//! ablation.

use vlq_arch::geometry::{patch_cost, transmon_savings_vs_baseline, Embedding};
use vlq_surface::embedding::compact_interaction_graph;
use vlq_surface::layout::SurfaceLayout;
use vlq_surgery::{
    verify_transversal_cnot_statevector, verify_transversal_cnot_tableau, LogicalOp,
};

fn main() {
    println!("== C1: transversal CNOT ==");
    println!(
        "latency: transversal = {} timestep, lattice surgery = {} timesteps ({}x)",
        LogicalOp::TransversalCnot.timesteps(),
        LogicalOp::LatticeSurgeryCnot.timesteps(),
        LogicalOp::transversal_speedup()
    );
    verify_transversal_cnot_tableau(3).expect("tableau process check d=3");
    verify_transversal_cnot_tableau(5).expect("tableau process check d=5");
    let f = verify_transversal_cnot_statevector(3);
    println!("process verification: tableau exact at d=3,5; statevector tomography d=3 min fidelity = {f:.12}");

    println!("\n== C2: hardware savings ==");
    for d in [3usize, 5, 7] {
        let nat = patch_cost(Embedding::Natural, d, 10);
        let com = patch_cost(Embedding::Compact, d, 10);
        println!(
            "d={d}: natural {} transmons + {} cavities | compact {} transmons + {} cavities | savings {:.1}x / {:.1}x",
            nat.transmons,
            nat.cavities,
            com.transmons,
            com.cavities,
            transmon_savings_vs_baseline(Embedding::Natural, d, 10),
            transmon_savings_vs_baseline(Embedding::Compact, d, 10),
        );
    }
    let c = patch_cost(Embedding::Compact, 3, 10);
    println!(
        "smallest Compact instance: {} transmons, {} cavities for ~10 logical qubits (paper: 11 and 9)",
        c.transmons, c.cavities
    );
    assert_eq!((c.transmons, c.cavities), (11, 9));

    println!("\n== A2: merge-direction ablation (paper SIII-C) ==");
    for d in [5usize, 7] {
        let layout = SurfaceLayout::new(d);
        let paper = compact_interaction_graph(&layout, false);
        let naive = compact_interaction_graph(&layout, true);
        println!(
            "d={d}: paper pairing max degree {} ({} directions) | naive same-corner max degree {} ({} directions)",
            paper.max_degree(),
            paper.num_edge_directions(),
            naive.max_degree(),
            naive.num_edge_directions(),
        );
        assert!(paper.max_degree() <= 4);
        assert!(naive.max_degree() > 4);
    }
    println!("\nAll claims verified.");
}
