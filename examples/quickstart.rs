//! Quickstart: allocate virtualized logical qubits, run logical
//! operations, and estimate a logical error rate — the library's three
//! main entry points in one file.
//!
//! Run: `cargo run --release --example quickstart`

use vlq::machine::{MachineConfig, VlqMachine};
use vlq::qec::{run_memory_experiment, ExperimentConfig};
use vlq::surface::schedule::{Basis, MemorySpec, Setup};

fn main() {
    // 1. A 2.5D machine: 2x2 stacks of Compact distance-3 patches with
    //    depth-10 cavities — 44 transmons serving up to 36 logical
    //    qubits.
    let cfg = MachineConfig::compact_demo();
    println!(
        "machine: {} stacks, {} transmons, {} cavities, capacity {} logical qubits",
        cfg.stacks_x * cfg.stacks_y,
        cfg.total_transmons(),
        cfg.total_cavities(),
        cfg.capacity()
    );

    // 2. Run a tiny logical program: a 4-qubit GHZ state.
    let mut machine = VlqMachine::new(cfg);
    let q: Vec<_> = (0..4).map(|_| machine.alloc().unwrap()).collect();
    machine.single_qubit_gate(q[0]).unwrap(); // logical H
    for i in 1..4 {
        machine.cnot(q[i - 1], q[i]).unwrap();
    }
    let report = machine.finish();
    println!(
        "GHZ-4: {} timesteps, {} transversal CNOTs, {} surgery CNOTs, {} moves, max refresh staleness {}",
        report.total_timesteps,
        report.transversal_cnots,
        report.surgery_cnots,
        report.moves,
        report.max_staleness
    );

    // 3. Estimate the logical error rate of one Compact-Interleaved
    //    memory qubit at the paper's operating point.
    let spec = MemorySpec::standard(Setup::CompactInterleaved, 3, 10, Basis::Z);
    let result = run_memory_experiment(&ExperimentConfig::new(spec, 2e-3).with_shots(5_000));
    let (lo, hi) = result.estimate.wilson_interval(1.96);
    println!(
        "compact-int d=3 @ p=2e-3: logical error rate {:.4e} (95% CI [{:.1e}, {:.1e}])",
        result.logical_error_rate(),
        lo,
        hi
    );
}
