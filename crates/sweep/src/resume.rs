//! Resuming sweeps from existing JSON-lines artifacts.
//!
//! Deterministic per-point seeding means a grid point's result depends
//! only on the spec and the base seed — never on which run computed it.
//! A [`ResumeCache`] therefore lets a figure binary skip every grid
//! point already present in a previous `--out` artifact and still emit
//! byte-identical final artifacts: cached points are emitted from the
//! cache, missing points are computed, and the merged record stream is
//! written in expansion order as usual. A `sweep-merge`d artifact is a
//! valid cache too — merging preserves the rows verbatim.
//!
//! Loading is *strict* (the [`crate::merge`] row parser): a truncated
//! or garbled line is a typed [`ArtifactError`], not a silently skipped
//! row, and [`ResumeCache::load_jsonl_expecting`] additionally rejects
//! artifacts sampled under a different base seed. The figure binaries
//! map both to exit code 2.

use std::collections::HashMap;
use std::io::{self, BufRead};
use std::path::Path;

use crate::merge::{parse_record_line, ArtifactError};
use crate::spec::SweepPoint;

/// The identity of a completed grid point, as recoverable from one
/// artifact row. `shots` and the sweep's base `seed` are part of the
/// key: a record with a different shot count — or sampled under a
/// different seed — is not a valid substitute.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ResumeKey {
    setup: String,
    basis: String,
    d: u64,
    /// Bit pattern of the physical error rate (exact float identity).
    p_bits: u64,
    k: u64,
    rounds: u64,
    decoder: String,
    knob: Option<(String, u64)>,
    program: Option<String>,
    shots: u64,
    seed: u64,
}

impl ResumeKey {
    /// The key a sweep point will be recorded under when run with
    /// `base_seed`.
    pub fn of_point(pt: &SweepPoint, base_seed: u64) -> Self {
        ResumeKey {
            setup: pt.setup.to_string(),
            basis: match pt.basis {
                vlq_surface::schedule::Basis::Z => "z".to_string(),
                vlq_surface::schedule::Basis::X => "x".to_string(),
            },
            d: pt.d as u64,
            p_bits: pt.p.to_bits(),
            k: pt.k as u64,
            rounds: pt.rounds.unwrap_or(pt.d) as u64,
            decoder: pt.decoder.name().to_string(),
            knob: pt
                .knob
                .as_ref()
                .map(|kn| (kn.name.clone(), kn.value.to_bits())),
            program: pt.program.clone(),
            shots: pt.shots,
            seed: base_seed,
        }
    }
}

/// Completed points loaded from a previous artifact: key → failures.
#[derive(Clone, Debug, Default)]
pub struct ResumeCache {
    completed: HashMap<ResumeKey, u64>,
}

impl ResumeCache {
    /// An empty cache (every point runs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether the cache holds no points.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// The cached failure count for a point, if its exact coordinates
    /// (including shots and the base seed) were completed before.
    pub fn failures_for(&self, pt: &SweepPoint, base_seed: u64) -> Option<u64> {
        self.completed
            .get(&ResumeKey::of_point(pt, base_seed))
            .copied()
    }

    /// Loads a cache from a `JsonlSink`-format artifact.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on read failures and
    /// [`ArtifactError::Malformed`] on any line that does not parse as
    /// a complete sweep record — truncated final lines from interrupted
    /// runs included. Rerun without `--resume` to regenerate a damaged
    /// artifact.
    pub fn load_jsonl(path: &Path) -> Result<Self, ArtifactError> {
        Self::load_inner(path, None)
    }

    /// [`ResumeCache::load_jsonl`], additionally rejecting rows sampled
    /// under any base seed other than `expected_seed` with a typed
    /// [`ArtifactError::SeedMismatch`] — reusing them would silently
    /// splice a different random stream into the artifact.
    ///
    /// # Errors
    ///
    /// As [`ResumeCache::load_jsonl`], plus the seed check.
    pub fn load_jsonl_expecting(path: &Path, expected_seed: u64) -> Result<Self, ArtifactError> {
        Self::load_inner(path, Some(expected_seed))
    }

    fn load_inner(path: &Path, expected_seed: Option<u64>) -> Result<Self, ArtifactError> {
        let file =
            std::fs::File::open(path).map_err(|e| ArtifactError::Io(path.to_path_buf(), e))?;
        let mut cache = ResumeCache::new();
        for (i, line) in io::BufReader::new(file).lines().enumerate() {
            let line = line.map_err(|e| ArtifactError::Io(path.to_path_buf(), e))?;
            let record = parse_record_line(&line).map_err(|reason| ArtifactError::Malformed {
                path: path.to_path_buf(),
                line: i + 1,
                reason,
            })?;
            if let Some(expected) = expected_seed {
                if record.base_seed != expected {
                    return Err(ArtifactError::SeedMismatch {
                        path: path.to_path_buf(),
                        line: i + 1,
                        found: record.base_seed,
                        expected,
                    });
                }
            }
            cache.completed.insert(
                ResumeKey::of_point(&record.point, record.base_seed),
                record.failures,
            );
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{JsonlSink, RecordSink, SweepRecord};
    use vlq_decoder::DecoderKind;
    use vlq_surface::schedule::{Basis, Setup};

    fn point(d: usize, p: f64) -> SweepPoint {
        SweepPoint {
            setup: Setup::CompactInterleaved,
            basis: Basis::Z,
            d,
            p,
            k: 10,
            rounds: None,
            decoder: DecoderKind::UnionFind,
            shots: 500,
            knob: None,
            program: None,
        }
    }

    #[test]
    fn parses_sink_output_back() {
        let records = vec![
            SweepRecord {
                index: 0,
                point: point(3, 1e-3),
                base_seed: 2020,
                shots: 500,
                failures: 7,
            },
            SweepRecord {
                index: 1,
                point: SweepPoint {
                    program: Some("ghz4".to_string()),
                    ..point(5, 2e-3)
                },
                base_seed: 2020,
                shots: 500,
                failures: 2,
            },
        ];
        let mut sink = JsonlSink::new(Vec::new());
        for r in &records {
            sink.write(r).unwrap();
        }
        let dir = std::env::temp_dir().join("vlq-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.jsonl");
        std::fs::write(&path, sink.into_inner()).unwrap();

        let cache = ResumeCache::load_jsonl(&path).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.failures_for(&records[0].point, 2020), Some(7));
        assert_eq!(cache.failures_for(&records[1].point, 2020), Some(2));
        // Different shots, distance, seed, or program: no match.
        let mut other = records[0].point.clone();
        other.shots = 501;
        assert_eq!(cache.failures_for(&other, 2020), None);
        assert_eq!(cache.failures_for(&point(7, 1e-3), 2020), None);
        assert_eq!(
            cache.failures_for(&records[0].point, 2021),
            None,
            "rows sampled under another base seed must not be reused"
        );
        // And with a seed expectation, the same file is accepted or
        // rejected wholesale.
        assert_eq!(
            ResumeCache::load_jsonl_expecting(&path, 2020)
                .unwrap()
                .len(),
            2
        );
        let err = ResumeCache::load_jsonl_expecting(&path, 2021).unwrap_err();
        assert!(
            matches!(
                err,
                ArtifactError::SeedMismatch {
                    line: 1,
                    found: 2020,
                    expected: 2021,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn garbage_lines_are_hard_errors() {
        let dir = std::env::temp_dir().join("vlq-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        for (i, garbage) in ["not json\n", "{\"d\":3\n", "{\"truncated\":"]
            .iter()
            .enumerate()
        {
            std::fs::write(&path, garbage).unwrap();
            let err = ResumeCache::load_jsonl(&path).unwrap_err();
            assert!(
                matches!(err, ArtifactError::Malformed { line: 1, .. }),
                "garbage #{i} gave {err}"
            );
        }
        // A valid row followed by a truncated one names the bad line.
        let mut sink = JsonlSink::new(Vec::new());
        sink.write(&SweepRecord {
            index: 0,
            point: point(3, 1e-3),
            base_seed: 1,
            shots: 500,
            failures: 0,
        })
        .unwrap();
        let mut bytes = sink.into_inner();
        bytes.extend_from_slice(b"{\"index\":1,\"setu");
        std::fs::write(&path, bytes).unwrap();
        let err = ResumeCache::load_jsonl(&path).unwrap_err();
        assert!(
            matches!(err, ArtifactError::Malformed { line: 2, .. }),
            "{err}"
        );
    }
}
