//! Magic-state factory planning: compares the three T-state factory
//! protocols (Figure 13 / Table II) and sizes a factory for a target
//! algorithm using the exact 15-to-1 distillation statistics.
//!
//! Run: `cargo run --release --example magic_state_factory`

use vlq::magic::distill::{distillation_stats, levels_to_reach};
use vlq::magic::factory::{FactoryProtocol, ProtocolKind};

fn main() {
    println!("== Factory protocols (d=5, k=10) ==");
    for proto in FactoryProtocol::all() {
        let cost = proto.hardware_cost(5, 10);
        println!(
            "{:<20} rate(100 patches) = {:.3} T/step | space for 1 T/step = {:>3.0} patches | {} transmons",
            proto.kind.to_string(),
            proto.rate_with_patches(100.0),
            proto.patches_for_one_t_per_step(),
            cost.transmons
        );
    }

    // Size a factory: a Shor-scale run needs ~1e9 T states below 1e-10
    // error; physical T injection gives p ~ 1e-3.
    let p_in = 1e-3;
    let target = 1e-10;
    let levels = levels_to_reach(p_in, target).expect("below distillation threshold");
    println!("\n== Distillation pipeline from p_in = {p_in:e} to {target:e} ==");
    let mut p = p_in;
    let mut inputs_per_output = 1.0;
    for level in 1..=levels {
        let s = distillation_stats(p);
        inputs_per_output *= s.expected_inputs_per_output();
        println!(
            "level {level}: p {:.2e} -> {:.2e} (acceptance {:.3})",
            p, s.p_out, s.acceptance
        );
        p = s.p_out;
    }
    println!(
        "{levels} levels; ~{inputs_per_output:.1} raw T states per output; VQubits factory achieves \
         1.22x the per-patch rate of the best lattice-surgery layout"
    );

    // Throughput of a 100-patch machine dedicated to distillation.
    let vq = FactoryProtocol::new(ProtocolKind::VQubitsNatural);
    let t_per_step = vq.rate_with_patches(100.0);
    println!(
        "a 100-patch VQubits machine emits {t_per_step:.2} T/timestep -> {:.1e} timesteps for 1e9 T states",
        1e9 / t_per_step
    );
}
