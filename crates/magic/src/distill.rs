//! The 15-to-1 T-state distillation protocol (Bravyi-Haah), analyzed
//! exactly.
//!
//! Fifteen noisy `|T>` states are injected into the 15-qubit quantum
//! Reed-Muller code; the X-stabilizers are measured and the output is
//! kept only when all four are trivial. Faulty inputs act as Z errors on
//! the code qubits, so the entire protocol reduces to GF(2) linear
//! algebra over the input error pattern — no sampling needed:
//!
//! * a pattern `e` passes post-selection iff `A e = 0` where `A` is the
//!   4x15 X-stabilizer matrix (`RM(1,4)*`),
//! * a passing pattern flips the output T state iff it has odd overlap
//!   with the logical operator (all-ones).
//!
//! Enumerating all 2^15 patterns gives the exact acceptance probability
//! and output error rate; the famous `35 p^3` coefficient is the number
//! of weight-3 codewords of the punctured Reed-Muller code.

use vlq_math::gf2::BitVec;
use vlq_math::rm::QuantumReedMuller15;

/// Exact statistics of one 15-to-1 distillation round at input error
/// probability `p` per T state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistillationStats {
    /// Input T-state error probability.
    pub p_in: f64,
    /// Probability the round passes post-selection.
    pub acceptance: f64,
    /// Output error probability, conditioned on acceptance.
    pub p_out: f64,
}

impl DistillationStats {
    /// Expected number of input T states consumed per accepted output.
    pub fn expected_inputs_per_output(&self) -> f64 {
        15.0 / self.acceptance
    }
}

/// Computes exact 15-to-1 statistics by enumerating all error patterns.
///
/// # Panics
///
/// Panics if `p` is not a probability.
///
/// # Examples
///
/// ```
/// use vlq_magic::distill::distillation_stats;
///
/// let s = distillation_stats(1e-3);
/// // p_out ~ 35 p^3 at small p.
/// let predicted = 35.0 * 1e-9;
/// assert!((s.p_out - predicted).abs() / predicted < 0.05);
/// ```
pub fn distillation_stats(p: f64) -> DistillationStats {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let code = QuantumReedMuller15::new();
    let a = &code.x_stabilizers;
    let n = 15usize;
    let mut accept_mass = 0.0f64;
    let mut error_mass = 0.0f64;
    for pattern in 0u32..(1 << n) {
        let weight = pattern.count_ones() as usize;
        let prob = p.powi(weight as i32) * (1.0 - p).powi((n - weight) as i32);
        if prob == 0.0 {
            continue;
        }
        let e = BitVec::from_bits((0..n).map(|i| pattern >> i & 1 == 1));
        if a.mul_vec(&e).is_zero() {
            accept_mass += prob;
            if weight % 2 == 1 {
                // Odd overlap with the all-ones logical: output flipped.
                error_mass += prob;
            }
        }
    }
    DistillationStats {
        p_in: p,
        acceptance: accept_mass,
        p_out: if accept_mass > 0.0 {
            error_mass / accept_mass
        } else {
            0.0
        },
    }
}

/// The number of weight-3 undetected patterns — the leading coefficient
/// of the output error (`p_out ≈ UNDETECTED_WEIGHT3 * p^3`).
pub const UNDETECTED_WEIGHT3: usize = 35;

/// Number of distillation levels needed to reach a target output error
/// starting from `p_in`, using exact per-level statistics.
///
/// Returns `None` if 10 levels do not suffice (the input is above the
/// distillation threshold of the protocol).
pub fn levels_to_reach(p_in: f64, target: f64) -> Option<usize> {
    let mut p = p_in;
    for level in 0..=10 {
        if p <= target {
            return Some(level);
        }
        let next = distillation_stats(p).p_out;
        if next >= p {
            return None; // above distillation threshold
        }
        p = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_law_at_small_p() {
        for &p in &[1e-4, 1e-3, 5e-3] {
            let s = distillation_stats(p);
            let predicted = 35.0 * p.powi(3);
            let ratio = s.p_out / predicted;
            assert!(
                (ratio - 1.0).abs() < 0.2,
                "p={p}: p_out {} vs 35p^3 {predicted}",
                s.p_out
            );
        }
    }

    #[test]
    fn acceptance_near_one_minus_15p() {
        // To first order the round rejects when any single error trips a
        // stabilizer; weight-1 patterns always do (the X-stabilizers have
        // full support coverage), so acceptance ~ (1-p)^15 + O(p^2)...
        let p = 1e-3;
        let s = distillation_stats(p);
        let first_order = 1.0 - 15.0 * p;
        assert!(
            (s.acceptance - first_order).abs() < 5e-4,
            "{}",
            s.acceptance
        );
    }

    #[test]
    fn zero_and_extreme_inputs() {
        let s = distillation_stats(0.0);
        assert_eq!(s.acceptance, 1.0);
        assert_eq!(s.p_out, 0.0);
        // Wildly noisy input: acceptance collapses toward 2^-4 (random
        // syndrome) and the output is useless.
        let s = distillation_stats(0.5);
        assert!((s.acceptance - 1.0 / 16.0).abs() < 1e-12);
        assert!((s.p_out - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distillation_improves_below_threshold() {
        let s = distillation_stats(0.01);
        assert!(s.p_out < 0.01 / 10.0, "one round should gain >10x");
        assert!(s.expected_inputs_per_output() > 15.0);
    }

    #[test]
    fn levels_to_reach_counts() {
        // From 1e-2, one round reaches ~3.5e-5, two rounds ~1.5e-12.
        assert_eq!(levels_to_reach(1e-2, 1e-2), Some(0));
        assert_eq!(levels_to_reach(1e-2, 1e-4), Some(1));
        assert_eq!(levels_to_reach(1e-2, 1e-10), Some(2));
        // Far above threshold it never converges.
        assert_eq!(levels_to_reach(0.4, 1e-10), None);
    }
}
