//! Work-stealing behavior of the engine, demonstrated with a
//! latency-bound executor so the test is meaningful on any core count:
//! chunks that *wait* (rather than burn CPU) overlap across workers,
//! so an 8-config scan must finish several times faster with 4+ workers
//! than serially. CPU-bound speedup follows the same schedule (see
//! `examples/sweep_speedup.rs` for the Monte-Carlo measurement).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use vlq_sweep::{SweepEngine, SweepExecutor, SweepPoint, SweepSpec};

/// Each chunk parks for a fixed latency — a stand-in for any
/// per-config work whose duration the scheduler cannot shrink.
struct SleepExecutor {
    per_chunk: Duration,
    prepares: AtomicUsize,
}

impl SweepExecutor for SleepExecutor {
    type Prepared = ();

    fn prepare(&self, _point: &SweepPoint) {
        self.prepares.fetch_add(1, Ordering::Relaxed);
    }

    fn run_chunk(&self, _prep: &(), _pt: &SweepPoint, shots: u64, seed: u64) -> u64 {
        std::thread::sleep(self.per_chunk);
        seed % (shots + 1)
    }
}

/// A threshold-style scan shape: 8 configs (2 distances x 2 rates x
/// 2 decoders), 4 chunks each = 32 tasks.
fn spec() -> SweepSpec {
    use vlq_decoder::DecoderKind;
    SweepSpec::new()
        .distances([3, 5])
        .error_rates([5e-3, 1e-2])
        .decoders([DecoderKind::Mwpm, DecoderKind::UnionFind])
        .shots(4 * 64)
        .base_seed(9)
}

fn run(workers: usize) -> (Duration, usize, Vec<vlq_sweep::SweepRecord>) {
    let executor = SleepExecutor {
        per_chunk: Duration::from_millis(10),
        prepares: AtomicUsize::new(0),
    };
    let engine = SweepEngine {
        chunk_shots: 64,
        ..SweepEngine::with_workers(workers)
    };
    let t0 = Instant::now();
    let records = engine.run(&spec(), &executor, &mut []).unwrap();
    (
        t0.elapsed(),
        executor.prepares.load(Ordering::Relaxed),
        records,
    )
}

#[test]
fn four_workers_overlap_an_eight_config_scan() {
    let (t1, prepares1, recs1) = run(1);
    let (t4, prepares4, recs4) = run(4);

    // Identical results under any schedule.
    assert_eq!(recs1, recs4);
    assert_eq!(recs1.len(), 8);

    // prepare() ran exactly once per point regardless of contention.
    assert_eq!(prepares1, 8);
    assert_eq!(prepares4, 8);

    // 32 chunks x 10 ms: serial needs >= 320 ms; 4 workers have a
    // critical path of ~80 ms. Require >= 2x to leave a wide margin for
    // slow CI machines — the point is overlap, not a precise ratio.
    assert!(
        t4 < t1 / 2,
        "4 workers ({t4:?}) should overlap the scan vs 1 worker ({t1:?})"
    );
}
