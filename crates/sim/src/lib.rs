//! Quantum simulators for the VLQ reproduction.
//!
//! Three complementary engines, each used for a different job:
//!
//! * [`tableau`] — an Aaronson-Gottesman (CHP) stabilizer simulator with
//!   exact phase tracking. Used to *validate* every syndrome-extraction
//!   schedule (stabilizer measurements on code states must be
//!   deterministic) and to verify logical operations at code scale.
//! * [`statevector`] — a dense state-vector simulator for small systems
//!   (up to ~22 qubits). Used for gate-identity checks (e.g. the
//!   iSWAP decomposition used by load/store) and for process tomography
//!   of the transversal CNOT on distance-3 patches.
//! * [`frame`] — a bit-parallel Pauli-frame Monte-Carlo engine (64 shots
//!   per machine word) plus a scalar single-fault propagator. This is the
//!   workhorse behind every threshold and sensitivity figure.
//!
//! The simulators share the gate vocabulary of [`CliffordGate`].

pub mod frame;
pub mod statevector;
pub mod tableau;

pub use frame::{FrameBatch, SingleFrame};
pub use statevector::StateVector;
pub use tableau::Tableau;

/// The Clifford gate vocabulary shared by all three simulators.
///
/// `ISwap` is first-class because the paper's load/store operation is a
/// transmon-mediated iSWAP between a transmon and a cavity mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CliffordGate {
    /// Hadamard.
    H(usize),
    /// Phase gate `diag(1, i)`.
    S(usize),
    /// Inverse phase gate `diag(1, -i)`.
    SDag(usize),
    /// Pauli X.
    X(usize),
    /// Pauli Y.
    Y(usize),
    /// Pauli Z.
    Z(usize),
    /// Controlled-NOT (control, target).
    Cnot(usize, usize),
    /// Controlled-Z (symmetric).
    Cz(usize, usize),
    /// Swap.
    Swap(usize, usize),
    /// iSWAP: swap plus `i` phase on the exchanged excitations.
    ISwap(usize, usize),
}

impl CliffordGate {
    /// The qubits the gate acts on (one or two).
    pub fn qubits(&self) -> (usize, Option<usize>) {
        use CliffordGate::*;
        match *self {
            H(q) | S(q) | SDag(q) | X(q) | Y(q) | Z(q) => (q, None),
            Cnot(a, b) | Cz(a, b) | Swap(a, b) | ISwap(a, b) => (a, Some(b)),
        }
    }

    /// Returns `true` for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        self.qubits().1.is_some()
    }
}
