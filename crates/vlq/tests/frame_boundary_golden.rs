//! Golden pins for the `FrameExecutor` memory path under
//! `Boundary::Full`: the boundary-aware rewrite must reproduce the
//! pre-redesign executor (commit 33c23a3) *bit-for-bit* — same legacy
//! per-timestep full-experiment blocks, same seed derivation, same
//! failure counts. The mid-circuit default is a different (better)
//! model and is covered by behavioral tests, not pins.

use vlq::decoder::DecoderKind;
use vlq::exec::{memory_schedule, Executor, FrameExecutor};
use vlq::machine::MachineConfig;
use vlq::program::{compile, LogicalCircuit};
use vlq::qec::Boundary;

#[test]
fn full_boundary_ghz3_matches_pre_redesign_counts() {
    let compiled = compile(&LogicalCircuit::ghz(3), MachineConfig::compact_demo()).unwrap();
    let report = FrameExecutor::at_scale(5e-3)
        .with_shots(2000)
        .with_seed(17)
        .with_boundary(Boundary::Full)
        .run(&compiled.schedule)
        .unwrap();
    assert_eq!(report.failures, 1974);
    assert_eq!(report.blocks_per_shot, 26);
}

#[test]
fn full_boundary_memory_schedule_matches_pre_redesign_counts() {
    let schedule = memory_schedule(MachineConfig::compact_demo(), 10);
    let report = FrameExecutor::at_scale(3e-3)
        .with_shots(3000)
        .with_seed(5)
        .with_boundary(Boundary::Full)
        .run(&schedule)
        .unwrap();
    assert_eq!(report.failures, 1387);
    assert_eq!(report.blocks_per_shot, 12);
}

#[test]
fn full_boundary_teleport_matches_pre_redesign_counts() {
    // Teleport exercises surgery CNOTs, magic-state consumption, and
    // measurement — every legacy expose path.
    let compiled = compile(&LogicalCircuit::teleport(), MachineConfig::compact_demo()).unwrap();
    let report = FrameExecutor::at_scale(4e-3)
        .with_shots(2000)
        .with_seed(23)
        .with_decoder(DecoderKind::Mwpm)
        .with_boundary(Boundary::Full)
        .run(&compiled.schedule)
        .unwrap();
    assert_eq!(report.failures, 1864);
    assert_eq!(report.blocks_per_shot, 37);
}
