//! Pauli operator algebra for the VLQ reproduction.
//!
//! Provides a single-qubit [`Pauli`] enum and a dense, bit-packed
//! n-qubit [`PauliString`] in the symplectic (X/Z bit-plane)
//! representation, with phase-tracked multiplication and commutation
//! queries. These are the working currency of the stabilizer tableau
//! simulator, the Pauli-frame Monte-Carlo engine, and the noise channels.
//!
//! # Examples
//!
//! ```
//! use vlq_pauli::{Pauli, PauliString};
//!
//! let xz = PauliString::from_str_sign("+XZ").unwrap();
//! let zx = PauliString::from_str_sign("+ZX").unwrap();
//! assert!(xz.commutes_with(&zx)); // two anticommuting sites -> commute
//! let prod = xz.mul(&zx);
//! assert_eq!(prod.pauli(0), Pauli::Y);
//! assert_eq!(prod.pauli(1), Pauli::Y);
//! ```

use std::fmt;

use vlq_math::BitVec;

/// A single-qubit Pauli operator (ignoring phase).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Pauli {
    /// Identity.
    #[default]
    I,
    /// Bit flip.
    X,
    /// Bit and phase flip (`Y = i X Z`).
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// All four Paulis in canonical order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The three non-identity Paulis.
    pub const ERRORS: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Symplectic representation: `(has_x, has_z)`.
    #[inline]
    pub fn xz(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Builds a Pauli from its symplectic bits.
    #[inline]
    pub fn from_xz(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Returns `true` if `self` commutes with `other` as single-qubit
    /// operators.
    #[inline]
    pub fn commutes_with(self, other: Pauli) -> bool {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        // Symplectic form: anticommute iff x1 z2 + z1 x2 = 1 (mod 2).
        !((x1 & z2) ^ (z1 & x2))
    }

    /// Product ignoring phase: `X * Z = Y`, etc.
    #[inline]
    pub fn mul_unsigned(self, other: Pauli) -> Pauli {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        Pauli::from_xz(x1 ^ x2, z1 ^ z2)
    }

    /// Parses one of `I`, `X`, `Y`, `Z` (case-insensitive), or `_`/`.` as
    /// identity.
    pub fn parse(c: char) -> Option<Pauli> {
        match c.to_ascii_uppercase() {
            'I' | '_' | '.' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// A dense n-qubit Pauli operator with a phase in `{+1, +i, -1, -i}`.
///
/// Stored in the symplectic representation: two bit planes `x` and `z`
/// (`Y` sets both). The phase exponent counts powers of `i` modulo 4, with
/// the convention that the operator is
/// `i^phase * prod_q X_q^{x_q} Z_q^{z_q}` — i.e. on each site the X factor
/// is written to the left of the Z factor, so `x=z=1` with `phase=1`
/// is `i * XZ = Y`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    x: BitVec,
    z: BitVec,
    /// Power of `i` in `{0, 1, 2, 3}`.
    phase: u8,
}

impl PauliString {
    /// The identity on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            x: BitVec::zeros(n),
            z: BitVec::zeros(n),
            phase: 0,
        }
    }

    /// Builds a Pauli string with the given single-qubit Pauli at `qubit`
    /// and identity elsewhere. `Y` is represented phase-correctly.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn single(n: usize, qubit: usize, p: Pauli) -> Self {
        let mut s = PauliString::identity(n);
        s.set_pauli(qubit, p);
        s
    }

    /// Builds from symplectic bit planes with phase exponent 0, adjusting
    /// the phase so each `x=z=1` site reads as `Y` (not `XZ`).
    ///
    /// # Panics
    ///
    /// Panics if the bit planes have different lengths.
    pub fn from_xz_planes(x: BitVec, z: BitVec) -> Self {
        assert_eq!(x.len(), z.len(), "x/z plane length mismatch");
        let mut y_count = 0usize;
        for (wx, wz) in x.words().iter().zip(z.words()) {
            y_count += (wx & wz).count_ones() as usize;
        }
        PauliString {
            x,
            z,
            phase: (y_count % 4) as u8,
        }
    }

    /// Parses strings like `"+XIZ"`, `"-YY"`, `"XZ"` (implicit `+`),
    /// `"iX"`, `"-iZ"`.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a description when the string is malformed.
    pub fn from_str_sign(s: &str) -> Result<Self, String> {
        let mut chars = s.chars().peekable();
        let mut phase = 0u8;
        match chars.peek() {
            Some('+') => {
                chars.next();
            }
            Some('-') => {
                chars.next();
                phase = 2;
            }
            _ => {}
        }
        if chars.peek() == Some(&'i') {
            chars.next();
            phase = (phase + 1) % 4;
        }
        let mut paulis = Vec::new();
        for c in chars {
            let p = Pauli::parse(c).ok_or_else(|| format!("invalid Pauli character {c:?}"))?;
            paulis.push(p);
        }
        if paulis.is_empty() {
            return Err("empty Pauli string".to_string());
        }
        let mut out = PauliString::identity(paulis.len());
        for (q, p) in paulis.into_iter().enumerate() {
            out.set_pauli(q, p);
        }
        out.phase = (out.phase + phase) % 4;
        Ok(out)
    }

    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` if the string acts on zero qubits.
    pub fn is_empty(&self) -> bool {
        self.x.len() == 0
    }

    /// The single-qubit Pauli at `qubit` (ignoring phase).
    pub fn pauli(&self, qubit: usize) -> Pauli {
        Pauli::from_xz(self.x.get(qubit), self.z.get(qubit))
    }

    /// Overwrites the Pauli at `qubit`, keeping the `i^phase * X^x Z^z`
    /// bookkeeping consistent so `Y` sites contribute `+Y`.
    pub fn set_pauli(&mut self, qubit: usize, p: Pauli) {
        // Remove the current site's contribution to the Y-phase convention.
        if self.x.get(qubit) && self.z.get(qubit) {
            self.phase = (self.phase + 3) % 4;
        }
        let (px, pz) = p.xz();
        self.x.set(qubit, px);
        self.z.set(qubit, pz);
        if px && pz {
            self.phase = (self.phase + 1) % 4;
        }
    }

    /// Phase exponent: the operator equals `i^phase() * X^x Z^z`.
    pub fn phase(&self) -> u8 {
        self.phase
    }

    /// The sign of the operator assuming it is Hermitian (phase 0 or 2).
    ///
    /// Returns `+1` or `-1`.
    ///
    /// # Panics
    ///
    /// Panics if the phase is imaginary (the operator is not Hermitian,
    /// which cannot arise from products of Hermitian Paulis measured in
    /// stabilizer circuits).
    pub fn sign(&self) -> i8 {
        match self.phase {
            0 => 1,
            2 => -1,
            _ => panic!("pauli string has imaginary phase {}", self.phase),
        }
    }

    /// X bit-plane.
    pub fn x_plane(&self) -> &BitVec {
        &self.x
    }

    /// Z bit-plane.
    pub fn z_plane(&self) -> &BitVec {
        &self.z
    }

    /// Number of non-identity sites.
    pub fn weight(&self) -> usize {
        let mut w = 0usize;
        for (wx, wz) in self.x.words().iter().zip(self.z.words()) {
            w += (wx | wz).count_ones() as usize;
        }
        w
    }

    /// Returns `true` if this operator is the identity (any phase).
    pub fn is_identity(&self) -> bool {
        self.x.is_zero() && self.z.is_zero()
    }

    /// Returns `true` if `self` and `other` commute.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        !self.anticommutes_with(other)
    }

    /// Returns `true` if `self` and `other` anticommute (symplectic product
    /// is odd).
    pub fn anticommutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(self.len(), other.len(), "length mismatch");
        self.x.dot(&other.z) ^ self.z.dot(&other.x)
    }

    /// Multiplies in place: `self <- self * other` (operator composition,
    /// `self` applied after `other`), tracking the phase exactly.
    pub fn mul_assign(&mut self, other: &PauliString) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        // i^k convention: (X^x1 Z^z1)(X^x2 Z^z2) picks up (-1)^(z1.x2)
        // from commuting Z^z1 past X^x2.
        let anti = self.z.dot(&other.x);
        self.phase = (self.phase + other.phase + if anti { 2 } else { 0 }) % 4;
        self.x.xor_assign(&other.x);
        self.z.xor_assign(&other.z);
    }

    /// Returns `self * other`.
    pub fn mul(&self, other: &PauliString) -> PauliString {
        let mut out = self.clone();
        out.mul_assign(other);
        out
    }

    /// Iterates over `(qubit, Pauli)` pairs of the non-identity sites.
    pub fn iter_support(&self) -> impl Iterator<Item = (usize, Pauli)> + '_ {
        (0..self.len()).filter_map(move |q| {
            let p = self.pauli(q);
            (p != Pauli::I).then_some((q, p))
        })
    }
}

impl fmt::Debug for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Display relative to the Y convention: count Y sites back out of
        // the phase so "+XY" round-trips.
        let mut y_count = 0usize;
        for (wx, wz) in self.x.words().iter().zip(self.z.words()) {
            y_count += (wx & wz).count_ones() as usize;
        }
        let display_phase = (self.phase + 4 - ((y_count % 4) as u8)) % 4;
        let prefix = match display_phase {
            0 => "+",
            1 => "+i",
            2 => "-",
            3 => "-i",
            _ => unreachable!(),
        };
        write!(f, "{prefix}")?;
        for q in 0..self.len() {
            write!(f, "{}", self.pauli(q))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_qubit_commutation_table() {
        use Pauli::*;
        for p in Pauli::ALL {
            assert!(p.commutes_with(p));
            assert!(p.commutes_with(I));
        }
        assert!(!X.commutes_with(Z));
        assert!(!X.commutes_with(Y));
        assert!(!Y.commutes_with(Z));
    }

    #[test]
    fn single_qubit_products() {
        use Pauli::*;
        assert_eq!(X.mul_unsigned(Z), Y);
        assert_eq!(X.mul_unsigned(Y), Z);
        assert_eq!(Y.mul_unsigned(Z), X);
        assert_eq!(X.mul_unsigned(X), I);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["+XIZ", "-YY", "+IIII", "+iX", "-iZZ"] {
            let p = PauliString::from_str_sign(s).unwrap();
            assert_eq!(p.to_string(), s.to_string());
        }
        // Implicit plus.
        assert_eq!(PauliString::from_str_sign("XZ").unwrap().to_string(), "+XZ");
        assert!(PauliString::from_str_sign("XQ").is_err());
        assert!(PauliString::from_str_sign("").is_err());
    }

    #[test]
    fn xx_zz_commute_x_z_anticommute() {
        let xx = PauliString::from_str_sign("XX").unwrap();
        let zz = PauliString::from_str_sign("ZZ").unwrap();
        let xi = PauliString::from_str_sign("XI").unwrap();
        let zi = PauliString::from_str_sign("ZI").unwrap();
        assert!(xx.commutes_with(&zz));
        assert!(xi.anticommutes_with(&zi));
        assert!(xx.anticommutes_with(&zi));
    }

    #[test]
    fn product_phases() {
        // X * Z = -iY  (since Y = iXZ => XZ = -iY).
        let x = PauliString::from_str_sign("X").unwrap();
        let z = PauliString::from_str_sign("Z").unwrap();
        let xz = x.mul(&z);
        assert_eq!(xz.pauli(0), Pauli::Y);
        assert_eq!(xz.to_string(), "-iY");
        // Z * X = +iY.
        let zx = z.mul(&x);
        assert_eq!(zx.to_string(), "+iY");
        // Y * Y = I with phase 0.
        let y = PauliString::from_str_sign("Y").unwrap();
        let yy = y.mul(&y);
        assert!(yy.is_identity());
        assert_eq!(yy.sign(), 1);
    }

    #[test]
    fn weight_and_support() {
        let p = PauliString::from_str_sign("XIYZI").unwrap();
        assert_eq!(p.weight(), 3);
        let support: Vec<(usize, Pauli)> = p.iter_support().collect();
        assert_eq!(support, vec![(0, Pauli::X), (2, Pauli::Y), (3, Pauli::Z)]);
    }

    #[test]
    fn set_pauli_keeps_y_convention() {
        let mut p = PauliString::identity(3);
        p.set_pauli(1, Pauli::Y);
        assert_eq!(p.to_string(), "+IYI");
        p.set_pauli(1, Pauli::X);
        assert_eq!(p.to_string(), "+IXI");
        p.set_pauli(1, Pauli::I);
        assert_eq!(p.to_string(), "+III");
    }

    #[test]
    fn mul_matches_sitewise_product() {
        let a = PauliString::from_str_sign("XYZI").unwrap();
        let b = PauliString::from_str_sign("YYIZ").unwrap();
        let c = a.mul(&b);
        assert_eq!(c.pauli(0), Pauli::Z);
        assert_eq!(c.pauli(1), Pauli::I);
        assert_eq!(c.pauli(2), Pauli::Z);
        assert_eq!(c.pauli(3), Pauli::Z);
    }

    #[test]
    fn from_xz_planes_reads_y_sites() {
        let x = BitVec::from_support(3, &[0, 1]);
        let z = BitVec::from_support(3, &[1, 2]);
        let p = PauliString::from_xz_planes(x, z);
        assert_eq!(p.to_string(), "+XYZ");
    }

    mod properties {
        //! Randomized property tests (seeded, deterministic). These were
        //! proptest strategies in the seed; the offline build has no
        //! registry access, so they run as fixed-seed sampling loops.
        use super::*;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        const CASES: usize = 256;

        fn random_pauli_string(rng: &mut SmallRng, n: usize) -> PauliString {
            let mut p = PauliString::identity(n);
            for q in 0..n {
                p.set_pauli(q, Pauli::ALL[rng.random_range(0..4usize)]);
            }
            p
        }

        #[test]
        fn mul_is_associative() {
            let mut rng = SmallRng::seed_from_u64(0xA550_C1A7);
            for _ in 0..CASES {
                let a = random_pauli_string(&mut rng, 6);
                let b = random_pauli_string(&mut rng, 6);
                let c = random_pauli_string(&mut rng, 6);
                let ab_c = a.mul(&b).mul(&c);
                let a_bc = a.mul(&b.mul(&c));
                assert_eq!(ab_c, a_bc);
            }
        }

        #[test]
        fn self_product_is_positive_identity() {
            // P * P = +I for any Pauli (Hermitian, squares to identity).
            let mut rng = SmallRng::seed_from_u64(0x5E1F);
            for _ in 0..CASES {
                let a = random_pauli_string(&mut rng, 8);
                let sq = a.mul(&a);
                assert!(sq.is_identity());
                assert_eq!(sq.sign(), 1);
            }
        }

        #[test]
        fn commutation_symmetry() {
            let mut rng = SmallRng::seed_from_u64(0xC0_117E);
            for _ in 0..CASES {
                let a = random_pauli_string(&mut rng, 5);
                let b = random_pauli_string(&mut rng, 5);
                assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
            }
        }

        #[test]
        fn product_commutation_rule() {
            // a*b = (-1)^(ab anticommute) b*a, so the unsigned parts
            // always agree and signs differ iff they anticommute.
            let mut rng = SmallRng::seed_from_u64(0x9B0D);
            for _ in 0..CASES {
                let a = random_pauli_string(&mut rng, 5);
                let b = random_pauli_string(&mut rng, 5);
                let ab = a.mul(&b);
                let ba = b.mul(&a);
                assert_eq!(ab.x_plane(), ba.x_plane());
                assert_eq!(ab.z_plane(), ba.z_plane());
                let phase_diff = (ab.phase() + 4 - ba.phase()) % 4;
                if a.anticommutes_with(&b) {
                    assert_eq!(phase_diff, 2);
                } else {
                    assert_eq!(phase_diff, 0);
                }
            }
        }

        #[test]
        fn display_parse_roundtrip() {
            let mut rng = SmallRng::seed_from_u64(0x0D15_F1A7);
            for _ in 0..CASES {
                let a = random_pauli_string(&mut rng, 7);
                let s = a.to_string();
                let back = PauliString::from_str_sign(&s).unwrap();
                assert_eq!(a, back);
            }
        }
    }
}
