//! Regression bound on the union-find vs MWPM accuracy gap.
//!
//! The union-find decoder approximates cluster growth by first contact;
//! this test runs identical sampled syndromes through both decoders at
//! d = 9 (where the approximation has the most room to distort the
//! fig11 ablation) and pins the logical-error-rate gap below a recorded
//! bound, so a decoder change that silently widens the gap fails CI.

use vlq_qec::{compare_decoders, DecoderKind, ExperimentConfig};
use vlq_surface::schedule::{Basis, MemorySpec, Setup};

#[test]
fn union_find_gap_vs_mwpm_at_d9_is_bounded() {
    // Below threshold but close enough that failures are plentiful at
    // modest statistics.
    let spec = MemorySpec::standard(Setup::Baseline, 9, 1, Basis::Z);
    let cfg = ExperimentConfig::new(spec, 5e-3)
        .with_shots(3000)
        .with_seed(2020);
    let results = compare_decoders(&cfg, &[DecoderKind::Mwpm, DecoderKind::UnionFind]);
    let mwpm = results[0].logical_error_rate();
    let uf = results[1].logical_error_rate();
    // `note:` prefix per the stderr convention in docs/observability.md.
    eprintln!(
        "note: d=9 shared-syndrome rates: mwpm={mwpm} uf={uf} ratio={}",
        uf / mwpm
    );

    // Identical syndromes: UF can only lose to (or tie) exact matching
    // up to sampling noise on the shared stream.
    assert!(
        uf >= mwpm * 0.9 - 0.002,
        "union-find ({uf}) implausibly beats MWPM ({mwpm}) on shared syndromes"
    );
    // Recorded accuracy-gap bound. compare_decoders derives chunk seeds
    // from (cfg.seed, chunk index) alone, so these values are exact on
    // every machine and thread count. Measured (PR 2): mwpm ≈ 0.0327,
    // uf ≈ 0.296 — a ~9x rate inflation at d = 9, vs within ~4x at
    // d = 3 (see lib.rs's union_find_runs_and_is_close_to_mwpm). The
    // first-contact growth approximation demonstrably distorts the
    // fig11 decoder ablation at large distances; the bound pins today's
    // gap so tightening work has a baseline and any regression beyond
    // it fails loudly.
    assert!(
        uf <= mwpm * 10.0 + 0.01,
        "union-find accuracy gap regressed: uf={uf} mwpm={mwpm} (recorded bound: 10x + 0.01)"
    );
}

#[test]
fn shared_syndromes_make_gap_measurable_at_small_statistics() {
    // Sanity at d=5: the comparison API returns one result per decoder,
    // over the same shot count, with rates in a plausible relation.
    let spec = MemorySpec::standard(Setup::Baseline, 5, 1, Basis::Z);
    let cfg = ExperimentConfig::new(spec, 6e-3)
        .with_shots(4000)
        .with_seed(7)
        .with_threads(1);
    let results = compare_decoders(&cfg, &[DecoderKind::Mwpm, DecoderKind::UnionFind]);
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].shots, 4000);
    assert!(results[0].logical_error_rate() > 0.0);
    assert!(results[1].logical_error_rate() >= results[0].logical_error_rate() * 0.5);

    // Chunk seeds depend only on (seed, chunk index), so the thread
    // count must not change the counts — the property that makes the
    // d=9 bound above machine-independent.
    let threaded = compare_decoders(
        &cfg.with_threads(4),
        &[DecoderKind::Mwpm, DecoderKind::UnionFind],
    );
    assert_eq!(results[0].failures, threaded[0].failures);
    assert_eq!(results[1].failures, threaded[1].failures);
}
