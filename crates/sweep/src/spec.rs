//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names the cartesian grid of an experiment scan —
//! setups × bases × cavity depths × decoders × distances × values —
//! plus any explicit extra points, and expands it into an ordered list
//! of [`SweepPoint`]s. Expansion order is part of the contract: record
//! indices, per-point seeds, and artifact row order all derive from it,
//! so the same spec always produces the same points in the same order
//! regardless of how the engine schedules them.

use vlq_decoder::DecoderKind;
use vlq_surface::schedule::{Basis, Setup};

/// A knob override swept instead of the physical error rate.
///
/// The engine itself does not interpret the knob; the executor does
/// (for memory experiments, `vlq-qec` maps the name onto its
/// sensitivity `Knob` registry). The name is part of the per-point
/// seed, so distinct knobs get distinct random streams.
#[derive(Clone, Debug, PartialEq)]
pub struct KnobSetting {
    /// Stable knob name (e.g. `"cavity-t1"`).
    pub name: String,
    /// The overridden value.
    pub value: f64,
}

/// One fully-specified grid point of a sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Hardware/schedule setup.
    pub setup: Setup,
    /// Memory basis.
    pub basis: Basis,
    /// Code distance.
    pub d: usize,
    /// Physical error rate (SC-SC scale). For knob sweeps this is the
    /// pinned operating point and `knob` carries the varied value.
    pub p: f64,
    /// Cavity depth (modes per cavity).
    pub k: usize,
    /// Syndrome rounds; `None` means the standard `rounds = d`.
    pub rounds: Option<usize>,
    /// Decoder choice.
    pub decoder: DecoderKind,
    /// Monte-Carlo shots for this point.
    pub shots: u64,
    /// Optional knob override (sensitivity sweeps).
    pub knob: Option<KnobSetting>,
    /// Optional program workload (program-level sweeps). `None` runs a
    /// memory experiment; `Some(name)` compiles and frame-replays the
    /// named logical program (the `vlq` crate's executor registry
    /// interprets the name, mirroring how knobs work).
    pub program: Option<String>,
}

impl SweepPoint {
    /// A stable 64-bit fingerprint of the point's coordinates.
    ///
    /// Folds every coordinate through an FNV-1a/splitmix combination.
    /// Deliberately excludes `shots` so shot-count changes refine the
    /// same random stream rather than replacing it.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |x: u64| {
            h = splitmix64(h ^ x);
        };
        fold(setup_index(self.setup) as u64);
        fold(match self.basis {
            Basis::Z => 0,
            Basis::X => 1,
        });
        fold(self.d as u64);
        fold(self.p.to_bits());
        fold(self.k as u64);
        fold(self.rounds.map_or(u64::MAX, |r| r as u64));
        fold(decoder_index(self.decoder) as u64);
        if let Some(knob) = &self.knob {
            for b in knob.name.bytes() {
                fold(b as u64);
            }
            fold(knob.value.to_bits());
        }
        // Folded only when present so memory-experiment fingerprints
        // (and therefore their seeded random streams) are unchanged
        // from before program sweeps existed.
        if let Some(program) = &self.program {
            fold(0x70726f67); // "prog" domain separator
            for b in program.bytes() {
                fold(b as u64);
            }
        }
        h
    }

    /// Deterministic seed for one chunk of this point's shots.
    ///
    /// Depends only on the base seed, the point coordinates, and the
    /// chunk index — never on worker count, steal order, or expansion
    /// index — so sweep results are reproducible under any schedule.
    pub fn chunk_seed(&self, base_seed: u64, chunk: u64) -> u64 {
        splitmix64(base_seed ^ self.fingerprint().rotate_left(17) ^ splitmix64(chunk))
    }
}

/// The grid fingerprint of an explicit point list under `base_seed`
/// (see [`SweepSpec::fingerprint`]). Binaries that stream several specs
/// into one artifact chain per-spec fingerprints with
/// [`combine_fingerprints`].
pub fn points_fingerprint(points: &[SweepPoint], base_seed: u64) -> u64 {
    let mut h = splitmix64(base_seed ^ 0x5377_6565_7053_7065); // "SweepSpe"
    for pt in points {
        h = splitmix64(h ^ pt.fingerprint() ^ splitmix64(pt.shots));
    }
    h
}

/// Folds one more spec fingerprint into an accumulated artifact
/// fingerprint (order-sensitive; start from 0).
pub fn combine_fingerprints(acc: u64, spec_fingerprint: u64) -> u64 {
    splitmix64(acc ^ spec_fingerprint.rotate_left(31))
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash step.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn setup_index(s: Setup) -> usize {
    Setup::ALL
        .iter()
        .position(|&x| x == s)
        .unwrap_or(usize::MAX)
}

fn decoder_index(d: DecoderKind) -> usize {
    DecoderKind::ALL
        .iter()
        .position(|&x| x == d)
        .unwrap_or(usize::MAX)
}

/// The varied innermost dimension of the grid.
#[derive(Clone, Debug, PartialEq)]
pub enum SweepAxis {
    /// Sweep the physical error rate (threshold scans).
    ErrorRates(Vec<f64>),
    /// Pin `p` at an operating point and sweep one named knob
    /// (sensitivity scans).
    Knob {
        /// Pinned physical error rate.
        p: f64,
        /// Knob name (interpreted by the executor).
        name: String,
        /// Swept knob values.
        values: Vec<f64>,
    },
}

/// Declarative description of a sweep: a cartesian grid plus explicit
/// extra points.
///
/// # Examples
///
/// ```
/// use vlq_sweep::SweepSpec;
/// use vlq_decoder::DecoderKind;
/// use vlq_surface::schedule::Setup;
///
/// let spec = SweepSpec::new()
///     .setups([Setup::Baseline, Setup::CompactInterleaved])
///     .distances([3, 5])
///     .error_rates([5e-3, 1e-2])
///     .decoders([DecoderKind::Mwpm])
///     .shots(1000)
///     .base_seed(7);
/// assert_eq!(spec.expand().len(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Setups to scan.
    pub setups: Vec<Setup>,
    /// Memory bases to scan.
    pub bases: Vec<Basis>,
    /// Code distances to scan.
    pub distances: Vec<usize>,
    /// Cavity depths to scan.
    pub ks: Vec<usize>,
    /// Decoders to scan.
    pub decoders: Vec<DecoderKind>,
    /// Program workloads to scan (empty = memory experiments). When
    /// non-empty this is the outermost grid dimension; every point
    /// carries one program name for a program-capable executor (the
    /// `vlq` crate's `ProgramSweepExecutor`).
    pub programs: Vec<String>,
    /// The innermost swept dimension.
    pub axis: SweepAxis,
    /// Syndrome rounds override (`None` = standard `rounds = d`).
    pub rounds: Option<usize>,
    /// Shots per grid point.
    pub shots: u64,
    /// Base RNG seed all per-point seeds derive from.
    pub base_seed: u64,
    /// Explicit points appended after the grid (escape hatch for
    /// non-rectangular scans).
    pub extra_points: Vec<SweepPoint>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            setups: vec![Setup::Baseline],
            bases: vec![Basis::Z],
            distances: vec![3],
            ks: vec![1],
            decoders: vec![DecoderKind::Mwpm],
            programs: Vec::new(),
            axis: SweepAxis::ErrorRates(vec![1e-3]),
            rounds: None,
            shots: 10_000,
            base_seed: 2020,
            extra_points: Vec::new(),
        }
    }
}

impl SweepSpec {
    /// A new spec with single-point defaults; chain the builder methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the setups dimension.
    pub fn setups(mut self, setups: impl IntoIterator<Item = Setup>) -> Self {
        self.setups = setups.into_iter().collect();
        self
    }

    /// Sets the bases dimension.
    pub fn bases(mut self, bases: impl IntoIterator<Item = Basis>) -> Self {
        self.bases = bases.into_iter().collect();
        self
    }

    /// Sets the distances dimension.
    pub fn distances(mut self, distances: impl IntoIterator<Item = usize>) -> Self {
        self.distances = distances.into_iter().collect();
        self
    }

    /// Sets the cavity-depth dimension.
    pub fn ks(mut self, ks: impl IntoIterator<Item = usize>) -> Self {
        self.ks = ks.into_iter().collect();
        self
    }

    /// Sets the decoder dimension.
    pub fn decoders(mut self, decoders: impl IntoIterator<Item = DecoderKind>) -> Self {
        self.decoders = decoders.into_iter().collect();
        self
    }

    /// Sets the program-workload dimension (program-level sweeps).
    pub fn programs<S: Into<String>>(mut self, programs: impl IntoIterator<Item = S>) -> Self {
        self.programs = programs.into_iter().map(Into::into).collect();
        self
    }

    /// Sweeps the physical error rate (threshold-style scan).
    pub fn error_rates(mut self, rates: impl IntoIterator<Item = f64>) -> Self {
        self.axis = SweepAxis::ErrorRates(rates.into_iter().collect());
        self
    }

    /// Sweeps a named knob at a pinned operating point `p`
    /// (sensitivity-style scan).
    pub fn knob(
        mut self,
        p: f64,
        name: impl Into<String>,
        values: impl IntoIterator<Item = f64>,
    ) -> Self {
        self.axis = SweepAxis::Knob {
            p,
            name: name.into(),
            values: values.into_iter().collect(),
        };
        self
    }

    /// Overrides the syndrome-round count for every point.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = Some(rounds);
        self
    }

    /// Sets shots per point.
    pub fn shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Sets the base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Appends an explicit point after the grid.
    pub fn point(mut self, point: SweepPoint) -> Self {
        self.extra_points.push(point);
        self
    }

    /// Number of points the spec expands to.
    pub fn len(&self) -> usize {
        let axis = match &self.axis {
            SweepAxis::ErrorRates(v) => v.len(),
            SweepAxis::Knob { values, .. } => values.len(),
        };
        self.programs.len().max(1)
            * self.setups.len()
            * self.bases.len()
            * self.ks.len()
            * self.decoders.len()
            * self.distances.len()
            * axis
            + self.extra_points.len()
    }

    /// Whether the spec expands to no points at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A stable 64-bit fingerprint of the whole sweep: the base seed
    /// folded with every expanded point's coordinate fingerprint and
    /// shot count, in expansion order.
    ///
    /// Two specs share a fingerprint exactly when they expand to the
    /// same points (same order, same shots) under the same seed — i.e.
    /// when their sharded artifacts are mergeable. Recorded in the
    /// `.meta.json` sidecar next to sweep artifacts so `sweep-merge`
    /// can refuse to interleave shards of different sweeps.
    pub fn fingerprint(&self) -> u64 {
        points_fingerprint(&self.expand(), self.base_seed)
    }

    /// Expands the grid into its ordered point list.
    ///
    /// Order: programs ▸ setups ▸ bases ▸ ks ▸ decoders ▸ distances ▸
    /// axis values, then `extra_points`. Distance-major over the
    /// innermost axis keeps the layout row-major per threshold curve,
    /// matching the paper's tables; an empty program dimension expands
    /// to plain memory-experiment points.
    pub fn expand(&self) -> Vec<SweepPoint> {
        let programs: Vec<Option<String>> = if self.programs.is_empty() {
            vec![None]
        } else {
            self.programs.iter().cloned().map(Some).collect()
        };
        let mut out = Vec::with_capacity(self.len());
        for program in &programs {
            for &setup in &self.setups {
                for &basis in &self.bases {
                    for &k in &self.ks {
                        for &decoder in &self.decoders {
                            for &d in &self.distances {
                                match &self.axis {
                                    SweepAxis::ErrorRates(rates) => {
                                        for &p in rates {
                                            out.push(SweepPoint {
                                                setup,
                                                basis,
                                                d,
                                                p,
                                                k,
                                                rounds: self.rounds,
                                                decoder,
                                                shots: self.shots,
                                                knob: None,
                                                program: program.clone(),
                                            });
                                        }
                                    }
                                    SweepAxis::Knob { p, name, values } => {
                                        for &v in values {
                                            out.push(SweepPoint {
                                                setup,
                                                basis,
                                                d,
                                                p: *p,
                                                k,
                                                rounds: self.rounds,
                                                decoder,
                                                shots: self.shots,
                                                knob: Some(KnobSetting {
                                                    name: name.clone(),
                                                    value: v,
                                                }),
                                                program: program.clone(),
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out.extend(self.extra_points.iter().cloned());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_order_is_stable_and_row_major() {
        let spec = SweepSpec::new()
            .distances([3, 5])
            .error_rates([1e-3, 2e-3, 3e-3])
            .shots(10);
        let pts = spec.expand();
        assert_eq!(pts.len(), 6);
        assert_eq!(spec.len(), 6);
        // d-major, p-minor.
        assert_eq!((pts[0].d, pts[0].p), (3, 1e-3));
        assert_eq!((pts[2].d, pts[2].p), (3, 3e-3));
        assert_eq!((pts[3].d, pts[3].p), (5, 1e-3));
    }

    #[test]
    fn knob_axis_expands_with_pinned_p() {
        let spec = SweepSpec::new().knob(2e-3, "cavity-t1", [1e-4, 1e-3]);
        let pts = spec.expand();
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|pt| pt.p == 2e-3));
        assert_eq!(pts[0].knob.as_ref().unwrap().name, "cavity-t1");
        assert_eq!(pts[1].knob.as_ref().unwrap().value, 1e-3);
    }

    #[test]
    fn seeds_differ_across_points_and_chunks_but_not_runs() {
        let spec = SweepSpec::new().distances([3, 5]).error_rates([1e-3, 2e-3]);
        let pts = spec.expand();
        let seeds: Vec<u64> = pts.iter().map(|pt| pt.chunk_seed(7, 0)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "per-point seeds collide");
        // Re-expansion yields identical seeds.
        let again: Vec<u64> = spec.expand().iter().map(|pt| pt.chunk_seed(7, 0)).collect();
        assert_eq!(seeds, again);
        // Chunks of one point get distinct seeds.
        assert_ne!(pts[0].chunk_seed(7, 0), pts[0].chunk_seed(7, 1));
        // Base seed matters.
        assert_ne!(pts[0].chunk_seed(7, 0), pts[0].chunk_seed(8, 0));
    }

    #[test]
    fn program_dimension_is_outermost_and_preserves_memory_seeds() {
        let memory = SweepSpec::new().distances([3, 5]).error_rates([1e-3]);
        let programs = memory.clone().programs(["ghz4", "teleport"]);
        assert_eq!(programs.len(), 2 * memory.len());
        let pts = programs.expand();
        assert_eq!(pts[0].program.as_deref(), Some("ghz4"));
        assert_eq!(pts[2].program.as_deref(), Some("teleport"));
        // Program coordinates change the random stream...
        assert_ne!(pts[0].fingerprint(), pts[2].fingerprint());
        // ...but memory points hash exactly as they did before the
        // program dimension existed (program = None folds nothing).
        let mem_pt = &memory.expand()[0];
        let mut like_mem = pts[0].clone();
        like_mem.program = None;
        assert_eq!(mem_pt.fingerprint(), like_mem.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_knobs() {
        let mut a = SweepSpec::new().knob(2e-3, "cavity-t1", [1e-3]).expand();
        let mut b = SweepSpec::new().knob(2e-3, "transmon-t1", [1e-3]).expand();
        let (a, b) = (a.remove(0), b.remove(0));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
