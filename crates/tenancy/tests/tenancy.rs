//! Integration pins for the multi-tenant scheduler: merged schedules
//! replay on every executor backend, per-tenant telemetry is
//! deterministic, and the deadline-aware policy measurably protects the
//! deadline tenant where LRU does not.

use vlq::decoder::DecoderKind;
use vlq::exec::{CostExecutor, Executor, FrameExecutor, TraceExecutor};
use vlq::machine::MachineConfig;
use vlq::program::{compile, LogicalCircuit};
use vlq_telemetry::Recorder;
use vlq_tenant::{merge_standard_mix, MultiProgram, PolicyKind, TenantScheduler, TenantSpec};

/// The `tenants1` sweep shape at d = 3, k = 3: two stacks, Compact
/// embedding, interleaved refresh (see
/// `vlq_tenant::machine_config_for_tenants`).
fn contended_config() -> MachineConfig {
    let mut config = MachineConfig::compact_demo();
    config.stacks_x = 1;
    config.stacks_y = 2;
    config.k = 3;
    config
}

fn two_ghz_tenants() -> MultiProgram {
    let config = MachineConfig::compact_demo();
    let mut sched = TenantScheduler::new(config, PolicyKind::RefreshDeadline.build());
    for name in ["alice", "bob"] {
        let program = compile(&LogicalCircuit::ghz(3), config).unwrap();
        sched.admit(TenantSpec::new(name, program)).unwrap();
    }
    sched.run().unwrap()
}

#[test]
fn merged_schedule_replays_on_every_backend() {
    let multi = two_ghz_tenants();

    let cost = CostExecutor.run(&multi.schedule).unwrap();
    assert!(cost.total_timesteps >= multi.tenants[0].ideal_t);
    assert_eq!(cost.transversal_cnots + cost.surgery_cnots, 4); // 2 per GHZ-3

    let trace = TraceExecutor.run(&multi.schedule).unwrap();
    assert_eq!(trace.len(), multi.schedule.len());

    let frames = FrameExecutor::at_scale(2e-3)
        .with_shots(50)
        .with_seed(7)
        .run(&multi.schedule)
        .unwrap();
    assert_eq!(frames.shots, 50);
}

#[test]
fn per_tenant_sub_schedules_replay_standalone() {
    let multi = two_ghz_tenants();
    for report in &multi.tenants {
        let cost = CostExecutor.run(&report.subschedule).unwrap();
        assert!(cost.total_timesteps >= report.ideal_t);
    }
}

#[test]
fn deadline_priority_beats_lru_on_deadline_misses() {
    // Three 3-qubit tenants on a capacity-4 machine (two k=3 stacks):
    // nine live qubits contend for four modes. LRU evicts the deadline
    // tenant's idle pages, whose skipped refresh passes then run past
    // the k-cycle deadline; deadline-aware priority keeps them
    // resident. The same cells appear in the `tenants1` artifact.
    let config = contended_config();
    let lru = merge_standard_mix(3, PolicyKind::Lru, config).unwrap();
    let dp = merge_standard_mix(3, PolicyKind::DeadlinePriority, config).unwrap();
    let (lru_t0, dp_t0) = (&lru.tenants[0], &dp.tenants[0]);
    assert!(lru_t0.deadline.is_some() && dp_t0.deadline.is_some());
    assert!(
        dp_t0.deadline_misses < lru_t0.deadline_misses,
        "deadline tenant: {} misses under deadline-priority vs {} under lru",
        dp_t0.deadline_misses,
        lru_t0.deadline_misses
    );
    // Both schedules stay structurally valid under thrash.
    lru.schedule.validate().unwrap();
    dp.schedule.validate().unwrap();
}

#[test]
fn per_tenant_sidecars_are_deterministic() {
    // Same tenants, same seed label => byte-identical per-tenant
    // deterministic reports (the contract the tenants1 CI smoke pins
    // across --workers 1/2/4; the merge itself is worker-independent).
    let render = || {
        let multi =
            merge_standard_mix(3, PolicyKind::DeadlinePriority, contended_config()).unwrap();
        multi
            .tenants
            .iter()
            .map(|report| {
                let recorder = Recorder::attached();
                report.record_full(&recorder).unwrap();
                recorder.deterministic_jsonl("tenancy-test", 42)
            })
            .collect::<Vec<String>>()
    };
    let (a, b) = (render(), render());
    assert_eq!(a, b);
    for sidecar in &a {
        assert!(sidecar.contains("tenant.queue_delay"));
        assert!(sidecar.contains("cost.deadline_misses"));
        assert!(sidecar.contains("cost.page_ins"));
    }
}

#[test]
fn frame_replay_distinguishes_policies_only_by_paging() {
    // The merged schedules under two policies differ only in page
    // traffic and addresses; both frame-replay to valid failure counts
    // with the same shot accounting.
    let config = contended_config();
    for kind in PolicyKind::ALL {
        let multi = merge_standard_mix(2, kind, config).unwrap();
        let failures = FrameExecutor::at_scale(5e-3)
            .with_shots(40)
            .with_seed(11)
            .with_decoder(DecoderKind::UnionFind)
            .run(&multi.schedule)
            .unwrap();
        assert!(failures.failures <= 40, "{kind}");
    }
}
