//! A minimal logical-circuit IR and compiler onto the [`VlqMachine`].
//!
//! Programs are sequences of logical operations over virtual qubit
//! indices; the compiler allocates machine qubits, schedules each
//! operation with the paper's latency model, and reports timestep totals
//! plus the transversal-vs-surgery breakdown. T gates are modeled as
//! magic-state consumption (the factory models live in `vlq-magic`).

use crate::machine::{LogicalId, MachineError, VlqMachine};

/// One logical program operation over virtual indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgOp {
    /// Controlled-NOT.
    Cnot(usize, usize),
    /// Hadamard (transversal-class single-qubit op).
    H(usize),
    /// T gate (consumes one magic state; latency of one transversal
    /// CNOT + measurement, modeled as 2 timesteps via teleportation).
    T(usize),
    /// Destructive logical measurement.
    Measure(usize),
}

/// A logical circuit over `num_qubits` virtual qubits.
#[derive(Clone, Debug, Default)]
pub struct LogicalCircuit {
    /// Number of virtual qubits.
    pub num_qubits: usize,
    /// Operation list.
    pub ops: Vec<ProgOp>,
}

impl LogicalCircuit {
    /// Creates an empty circuit.
    pub fn new(num_qubits: usize) -> Self {
        LogicalCircuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Appends an op (builder style).
    pub fn push(&mut self, op: ProgOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// A GHZ-state preparation circuit on `n` qubits.
    pub fn ghz(n: usize) -> Self {
        let mut c = LogicalCircuit::new(n);
        c.push(ProgOp::H(0));
        for i in 1..n {
            c.push(ProgOp::Cnot(i - 1, i));
        }
        c
    }

    /// Number of T gates (magic states needed).
    pub fn t_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, ProgOp::T(_)))
            .count()
    }
}

/// Result of compiling and executing a program on the machine.
#[derive(Clone, Debug)]
pub struct CompileReport {
    /// Machine execution report.
    pub machine: crate::machine::MachineReport,
    /// Magic states consumed.
    pub magic_states: usize,
}

/// Compiles and executes a logical circuit on the machine.
///
/// # Errors
///
/// Propagates machine errors (capacity, dead qubits).
pub fn run_program(
    machine: &mut VlqMachine,
    circuit: &LogicalCircuit,
) -> Result<Vec<LogicalId>, MachineError> {
    let ids: Vec<LogicalId> = (0..circuit.num_qubits)
        .map(|_| machine.alloc())
        .collect::<Result<_, _>>()?;
    for op in &circuit.ops {
        match *op {
            ProgOp::Cnot(c, t) => machine.cnot(ids[c], ids[t])?,
            ProgOp::H(q) => machine.single_qubit_gate(ids[q])?,
            ProgOp::T(q) => {
                // Magic-state teleportation: one transversal interaction
                // with the factory output plus a measurement.
                machine.single_qubit_gate(ids[q])?;
                machine.single_qubit_gate(ids[q])?;
            }
            ProgOp::Measure(q) => machine.measure(ids[q])?,
        }
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    #[test]
    fn ghz_program_runs() {
        let mut m = VlqMachine::new(MachineConfig::compact_demo());
        let circuit = LogicalCircuit::ghz(6);
        run_program(&mut m, &circuit).unwrap();
        let r = m.finish();
        assert_eq!(r.transversal_cnots + r.surgery_cnots, 5);
        assert!(r.total_timesteps >= 6);
    }

    #[test]
    fn t_count() {
        let mut c = LogicalCircuit::new(2);
        c.push(ProgOp::T(0))
            .push(ProgOp::T(1))
            .push(ProgOp::Cnot(0, 1));
        assert_eq!(c.t_count(), 2);
    }

    #[test]
    fn co_located_program_is_faster_than_surgery() {
        // All six GHZ qubits fit one stack (k-1 = 9 modes): every CNOT is
        // transversal. With the surgery policy it costs 6x per CNOT.
        let mut cfg = MachineConfig::compact_demo();
        cfg.stacks_x = 1;
        cfg.stacks_y = 1;
        let mut fast = VlqMachine::new(cfg);
        run_program(&mut fast, &LogicalCircuit::ghz(6)).unwrap();
        let fast_steps = fast.finish().total_timesteps;

        let mut cfg2 = MachineConfig::compact_demo();
        cfg2.prefer_transversal = false;
        cfg2.stacks_x = 6; // force one qubit per stack
        cfg2.stacks_y = 1;
        cfg2.k = 2;
        let mut slow = VlqMachine::new(cfg2);
        // Spread allocations: alloc() picks emptiest stack, so 6 qubits
        // land on 6 stacks.
        run_program(&mut slow, &LogicalCircuit::ghz(6)).unwrap();
        let slow_steps = slow.finish().total_timesteps;
        assert!(
            fast_steps * 3 < slow_steps,
            "fast {fast_steps} vs slow {slow_steps}"
        );
    }
}
