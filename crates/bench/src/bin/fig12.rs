//! Regenerates Figure 12: sensitivity of the Compact, Interleaved logical
//! error rate to each error source at the p = 2e-3 operating point.
//!
//! Usage:
//!   cargo run --release -p vlq-bench --bin fig12 -- \
//!     [--panel name|all] [--trials N] [--dmax D] [--extended]
//!
//! Panels: sc-sc-error, load-store-error, sc-mode-error, cavity-t1,
//! transmon-t1, load-store-duration, cavity-size.

use vlq_bench::{sci, Args};
use vlq_qec::{sensitivity_sweep, DecoderKind, Knob};
use vlq_surface::schedule::Setup;

fn values_for(knob: Knob, extended: bool) -> Vec<f64> {
    match knob {
        Knob::ScScError | Knob::LoadStoreError | Knob::ScModeError => {
            vec![1e-5, 1e-4, 1e-3, 2e-3, 5e-3, 1e-2]
        }
        Knob::CavityT1 => vec![1e-5, 1e-4, 1e-3, 1e-2, 1e-1],
        Knob::TransmonT1 => vec![1e-5, 1e-4, 1e-3, 1e-2, 1e-1],
        Knob::LoadStoreDuration => vec![1e-7, 1e-6, 1e-5, 1e-4],
        Knob::CavitySize => {
            if extended {
                // C3: push past the paper's plotted range to find where
                // cavity decoherence starts dominating (paper: k ~ 150).
                vec![5.0, 10.0, 20.0, 30.0, 60.0, 100.0, 150.0, 250.0]
            } else {
                vec![5.0, 10.0, 20.0, 30.0]
            }
        }
    }
}

fn main() {
    let args = Args::parse();
    let trials: u64 = args.get("trials", 10_000);
    let dmax: usize = args.get("dmax", 5);
    let seed: u64 = args.get("seed", 2020);
    let extended = args.has("extended");
    let panel = args.get_str("panel", "all");
    let distances: Vec<usize> = [3usize, 5, 7, 9, 11]
        .into_iter()
        .filter(|&d| d <= dmax)
        .collect();

    println!(
        "Figure 12: Compact-Interleaved sensitivity at operating point p=2e-3 ({trials} trials/point)"
    );
    for knob in Knob::ALL {
        if panel != "all" && knob.to_string() != panel {
            continue;
        }
        let values = values_for(knob, extended);
        println!(
            "\n-- panel: {knob} (reference value {}) --",
            sci(knob.reference_value())
        );
        let points = sensitivity_sweep(
            Setup::CompactInterleaved,
            knob,
            &values,
            &distances,
            trials,
            seed,
            DecoderKind::Mwpm,
        );
        print!("{:>12}", "value \\ d");
        for &d in &distances {
            print!("{d:>12}");
        }
        println!();
        for &v in &values {
            print!("{:>12}", sci(v));
            for &d in &distances {
                let pt = points
                    .iter()
                    .find(|pt| pt.d == d && pt.value == v)
                    .expect("point");
                print!("{:>12}", sci(pt.estimate.rate()));
            }
            println!();
        }
    }
}
