//! The 2.5D transmon + cavity hardware model of the VLQ paper.
//!
//! This crate captures the *hardware side* of the architecture:
//!
//! * [`params`] — Table I device parameters and the derived error-rate
//!   model (how every gate/idle error scales with the single headline
//!   physical error rate `p`).
//! * [`address`] — virtual and physical addresses for logical qubits:
//!   a logical qubit lives at `(stack, mode)`; a stack is a 2D patch of
//!   transmons whose attached cavities hold `k` modes each.
//! * [`geometry`] — transmon/cavity counting formulas for the Baseline,
//!   Natural, and Compact embeddings (the paper's 10x / 20x hardware
//!   savings and the Table II costs).
//! * [`graph`] — a small undirected interaction-graph type used to check
//!   embeddings against hardware connectivity constraints (the paper's
//!   "4-way grid connectivity" argument for Compact).

pub mod address;
pub mod geometry;
pub mod graph;
pub mod params;

pub use address::{ModeIndex, PhysAddr, StackCoord, VirtAddr};
pub use geometry::{Embedding, PatchCost};
pub use graph::InteractionGraph;
pub use params::{ErrorRates, HardwareParams};
