//! Regenerates Figure 11: error-threshold curves for the baseline and
//! the four 2.5D variants.
//!
//! The whole scan — every requested setup × decoder × distance × error
//! rate — expands into ONE `SweepSpec` and runs on the `vlq-sweep`
//! work-stealing engine, so parallelism spans configs × shots. With
//! `--out <dir>` the records additionally stream to `fig11.csv` and
//! `fig11.jsonl`; the printed tables are derived from the same records,
//! so the artifacts always match the text output.
//!
//! The paper runs 2,000,000 trials per point over d in {3..11}; defaults
//! here are laptop-scale (see EXPERIMENTS.md for the recorded runs).

use vlq_bench::{
    engine_from_args, finish_telemetry, parse_f64_list, plan_from_args, resume_cache_from_args,
    resumed_points, sci, shard_from_args, telemetry_from_args, threads_from_args, usage_exit, Args,
    MetaBuilder, OutSinks,
};
use vlq_qec::{estimate_threshold, run_sweep_opts_par, DecoderKind, ThresholdScan};
use vlq_surface::schedule::{Basis, Setup};
use vlq_sweep::{RunOptions, SweepSpec};

const USAGE: &str = "\
usage: fig11 [--trials N] [--dmax D] [--k K] [--seed S]
             [--decoder mwpm|uf|all] [--setup NAME|all] [--basis z|x]
             [--rates P1,P2,...] [--workers N] [--threads N|auto] [--out DIR]
             [--resume] [--shard I/N] [--plan PATH] [--times PATH]
             [--telemetry PATH] [--quiet]
  --decoder  decoder(s) to scan (default mwpm; `all` runs the ablation)
  --setup    one of baseline|natural-aao|natural-int|compact-aao|compact-int|all
  --rates    comma-separated physical error rates (default: 8 rates, 8e-4..1.6e-2)
  --out      write fig11.csv and fig11.jsonl sweep artifacts into DIR
  --resume   skip grid points already present in DIR/fig11.jsonl (needs --out;
             deterministic seeding keeps resumed artifacts byte-identical)
  --shard    run only grid points with index % N == I (same global numbering
             and seeds as the full run; `sweep-merge` restores full artifacts)
  --plan     explicit shard-plan file (from `sweep-launch --shard-by time`):
             this shard runs the grid points the plan assigns it instead of
             the stride rule (needs --shard; seeds and bytes are unchanged)
  --times    record per-point wall times (nanos) to PATH in the
             vlq-sweep-times-v1 format the time-based planner calibrates from
  --threads  in-block sample-pool workers per chunk (default 1; `auto` uses
             available_parallelism; results and sidecars are bit-identical
             at any value)
  --telemetry  write a vlq-telemetry JSONL sidecar to PATH and print a runtime
               summary to stderr (sidecar is byte-stable across --workers and
               --threads)";

fn main() {
    let args = Args::parse_validated(
        USAGE,
        &[
            "trials",
            "dmax",
            "k",
            "seed",
            "decoder",
            "setup",
            "basis",
            "rates",
            "workers",
            "threads",
            "out",
            "shard",
            "plan",
            "times",
            "telemetry",
        ],
        &["quiet", "resume"],
    );
    let trials: u64 = args.get_or_usage(USAGE, "trials", 20_000);
    let dmax: usize = args.get_or_usage(USAGE, "dmax", 7);
    let k: usize = args.get_or_usage(USAGE, "k", 10);
    let seed: u64 = args.get_or_usage(USAGE, "seed", 2020);

    let decoder_arg = args.get_str("decoder", "mwpm");
    let decoders: Vec<DecoderKind> = if decoder_arg == "all" {
        DecoderKind::ALL.to_vec()
    } else {
        match DecoderKind::parse(&decoder_arg) {
            Some(d) => vec![d],
            None => usage_exit(
                USAGE,
                &format!(
                    "unknown --decoder {decoder_arg:?}; accepted: \
                     mwpm|blossom|matching, uf|unionfind|union-find, all"
                ),
            ),
        }
    };

    let basis = match args.get_str("basis", "z").as_str() {
        "z" => Basis::Z,
        "x" => Basis::X,
        other => usage_exit(USAGE, &format!("unknown --basis {other:?}; accepted: z|x")),
    };

    let setup_arg = args.get_str("setup", "all");
    let setups: Vec<Setup> = if setup_arg == "all" {
        Setup::ALL.to_vec()
    } else {
        match Setup::ALL.into_iter().find(|s| s.to_string() == setup_arg) {
            Some(s) => vec![s],
            None => usage_exit(
                USAGE,
                &format!(
                    "unknown --setup {setup_arg:?}; accepted: {}|all",
                    Setup::ALL.map(|s| s.to_string()).join("|")
                ),
            ),
        }
    };

    let distances: Vec<usize> = [3usize, 5, 7, 9, 11]
        .into_iter()
        .filter(|&d| d <= dmax)
        .collect();
    if distances.is_empty() {
        usage_exit(USAGE, &format!("--dmax {dmax} leaves no distances to scan"));
    }
    // Wide default sweep: the baseline crosses near 1e-2; under this
    // model's conservative memory-serialization timing the 2.5D setups
    // cross lower (1e-3 to 7e-3), so the sweep covers both decades.
    let rates: Vec<f64> = match args.pairs_get("rates") {
        None => vec![8e-4, 1.2e-3, 2e-3, 3e-3, 5e-3, 8e-3, 1.2e-2, 1.6e-2],
        Some(s) => parse_f64_list(&s)
            .unwrap_or_else(|| usage_exit(USAGE, &format!("invalid --rates {s:?}"))),
    };

    let spec = SweepSpec::new()
        .setups(setups.iter().copied())
        .bases([basis])
        .distances(distances.iter().copied())
        .ks([k])
        .decoders(decoders.iter().copied())
        .error_rates(rates.iter().copied())
        .shots(trials)
        .base_seed(seed);

    let (recorder, telemetry_path) = telemetry_from_args(&args);
    let engine = engine_from_args(&args, USAGE).with_recorder(recorder.clone());
    let par = threads_from_args(&args, USAGE);
    let shard = shard_from_args(&args, USAGE);
    let plan = plan_from_args(&args, USAGE, shard);
    let opts = RunOptions {
        shard,
        index_offset: 0,
        plan,
    };
    // Read the previous artifact (if resuming) before the sinks
    // truncate it.
    let cache = resume_cache_from_args(&args, USAGE, "fig11", seed);
    let skipped = resumed_points(&spec, &cache, &opts);
    if skipped > 0 {
        let owned = (0..spec.len()).filter(|&i| opts.owns(i)).count();
        eprintln!("note: resume: {skipped}/{owned} points already complete");
    }
    let mut out = OutSinks::from_args(&args, "fig11");
    let mut meta = MetaBuilder::new(seed, shard).with_plan(opts.plan.as_ref());
    meta.absorb(&spec);
    out.write_meta(&meta.build());
    let records = run_sweep_opts_par(&spec, &engine, &mut out.as_dyn(), &cache, &opts, &par)
        .expect("sweep artifacts");
    finish_telemetry(&recorder, telemetry_path.as_deref(), "fig11", seed);

    println!(
        "Figure 11: thresholds ({} trials/point, decoder {}, basis {:?}, k={k}, {} points)",
        trials,
        decoder_arg,
        basis,
        records.len()
    );
    if !shard.is_full() {
        // A shard holds a strided subset of every threshold curve;
        // printed tables only make sense on the merged artifact.
        println!(
            "shard {shard}: {} of {} grid points (tables are printed by full runs \
             or after sweep-merge)",
            records.len(),
            spec.len()
        );
        out.announce();
        return;
    }
    for setup in &setups {
        for decoder in &decoders {
            let scan = ThresholdScan::from_records(
                *setup, basis, k, *decoder, &distances, &rates, &records,
            );
            println!("\n-- {setup} ({decoder}) --");
            print!("{:>8}", "p \\ d");
            for &d in &distances {
                print!("{d:>12}");
            }
            println!();
            for (pi, &p) in rates.iter().enumerate() {
                print!("{:>8}", sci(p));
                for &d in &distances {
                    let rate = scan.curve(d)[pi];
                    print!("{:>12}", sci(rate));
                }
                println!();
            }
            match estimate_threshold(&scan) {
                Some(th) => {
                    let paper = match setup {
                        Setup::Baseline | Setup::NaturalAllAtOnce => 0.009,
                        _ => 0.008,
                    };
                    println!("threshold ~ {} (paper: {paper})", sci(th));
                }
                None => println!("threshold: no crossing in scanned range"),
            }
        }
    }
    out.announce();
}
