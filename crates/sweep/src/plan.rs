//! Generalized shard-ownership plans.
//!
//! [`crate::ShardSpec`] hard-codes round-robin striding: shard `i/N`
//! owns the points with `global_index % N == i`. That is the right
//! default — no coordination, no files — but it balances *point counts*,
//! not *cost*: a d=13 grid point can cost orders of magnitude more than
//! a d=3 one, so striding leaves most of a fleet idle behind one hot
//! shard. A [`ShardPlan`] generalizes ownership to any disjoint cover
//! of `0..points`, while keeping the stride as the implicit plan when
//! no explicit one is given.
//!
//! Explicit plans are deterministic artifacts: built by a pure greedy
//! LPT pass over measured per-point costs ([`ShardPlan::from_costs`]),
//! fingerprinted, and round-tripped through a single-line JSON file so
//! every shard of a fleet (and `sweep-merge` afterwards) can prove it
//! is working from the same assignment.

use std::fmt;
use std::io;
use std::path::Path;

use crate::merge::{parse_flat_json, JsonValue};
use crate::spec::splitmix64;

/// Schema tag of the plan file.
pub const PLAN_SCHEMA: &str = "vlq-shard-plan-v1";

/// Schema tag of the per-point times file ([`load_times`]).
pub const TIMES_SCHEMA: &str = "vlq-sweep-times-v1";

/// Everything that can go wrong loading or validating a plan or times
/// file.
#[derive(Debug)]
pub enum PlanError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file exists but does not parse as a valid plan/times file.
    Malformed {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Io(e) => write!(f, "plan I/O error: {e}"),
            PlanError::Malformed { reason } => write!(f, "malformed plan: {reason}"),
        }
    }
}

impl From<io::Error> for PlanError {
    fn from(e: io::Error) -> Self {
        PlanError::Io(e)
    }
}

fn malformed(reason: impl Into<String>) -> PlanError {
    PlanError::Malformed {
        reason: reason.into(),
    }
}

/// An assignment of globally-numbered grid points to shards.
///
/// `Stride` is the implicit default (`g % count`), byte-compatible with
/// every artifact produced before plans existed. `Explicit` carries one
/// owner per point and exists to balance measured cost instead of point
/// count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardPlan {
    /// Round-robin striding: point `g` belongs to shard `g % count`.
    Stride {
        /// Number of shards.
        count: usize,
    },
    /// One explicit owner per point (`owners[g] < count`).
    Explicit {
        /// Number of shards.
        count: usize,
        /// Owner shard of each global point index.
        owners: Vec<u32>,
    },
}

impl ShardPlan {
    /// The default plan for `count` shards (round-robin striding).
    pub fn stride(count: usize) -> Self {
        ShardPlan::Stride {
            count: count.max(1),
        }
    }

    /// Number of shards the plan distributes over.
    pub fn count(&self) -> usize {
        match self {
            ShardPlan::Stride { count } | ShardPlan::Explicit { count, .. } => *count,
        }
    }

    /// Number of points the plan covers (`None` for stride plans, which
    /// cover any grid).
    pub fn points(&self) -> Option<usize> {
        match self {
            ShardPlan::Stride { .. } => None,
            ShardPlan::Explicit { owners, .. } => Some(owners.len()),
        }
    }

    /// The owning shard of global point `g` (`None` when an explicit
    /// plan does not cover `g`).
    pub fn owner_of(&self, g: usize) -> Option<usize> {
        match self {
            ShardPlan::Stride { count } => Some(g % count),
            ShardPlan::Explicit { owners, .. } => owners.get(g).map(|&o| o as usize),
        }
    }

    /// Whether shard `shard_index` owns global point `g`.
    pub fn owns(&self, shard_index: usize, g: usize) -> bool {
        self.owner_of(g) == Some(shard_index)
    }

    /// Number of points an explicit plan assigns to `shard_index`
    /// (`None` for stride plans — use [`crate::ShardSpec::len_of`]).
    pub fn shard_len(&self, shard_index: usize) -> Option<usize> {
        match self {
            ShardPlan::Stride { .. } => None,
            ShardPlan::Explicit { owners, .. } => Some(
                owners
                    .iter()
                    .filter(|&&o| o as usize == shard_index)
                    .count(),
            ),
        }
    }

    /// A stable 64-bit fingerprint of an explicit assignment (`None`
    /// for stride plans — the stride is the fingerprint-free default,
    /// so pre-plan sidecars stay byte-identical). Recorded in the
    /// `.meta.json` sidecar so merge validation can refuse to
    /// interleave shards cut from different plans.
    pub fn fingerprint(&self) -> Option<u64> {
        match self {
            ShardPlan::Stride { .. } => None,
            ShardPlan::Explicit { count, owners } => {
                let mut h = splitmix64(0x7368_6172_6470_6c6e ^ *count as u64); // "shardpln"
                for &o in owners {
                    h = splitmix64(h ^ u64::from(o).rotate_left(17));
                }
                Some(h)
            }
        }
    }

    /// Builds a cost-balanced explicit plan by deterministic greedy LPT
    /// (longest processing time first): points sorted by cost
    /// descending (index ascending on ties) are assigned one by one to
    /// the least-loaded shard (lowest index on ties). Pure function of
    /// `(count, costs)` — same inputs, same plan, same fingerprint.
    pub fn from_costs(count: usize, costs: &[u64]) -> Self {
        let count = count.max(1);
        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));
        let mut load = vec![0u64; count];
        let mut owners = vec![0u32; costs.len()];
        for &i in &order {
            let shard = (0..count)
                .min_by_key(|&s| (load[s], s))
                .expect("count >= 1");
            owners[i] = shard as u32;
            // Zero-cost points still count as work so pathological cost
            // vectors cannot pile every point onto shard 0.
            load[shard] += costs[i].max(1);
        }
        ShardPlan::Explicit { count, owners }
    }

    /// Renders an explicit plan as its single-line JSON plan file
    /// (stride plans have no file form — they are the absence of one).
    ///
    /// Fixed key order; owners are comma-separated decimals so the file
    /// stays flat-JSON parseable at any shard count.
    pub fn render(&self) -> Option<String> {
        match self {
            ShardPlan::Stride { .. } => None,
            ShardPlan::Explicit { count, owners } => {
                let fp = self.fingerprint().expect("explicit plans fingerprint");
                let owner_list: Vec<String> = owners.iter().map(|o| o.to_string()).collect();
                Some(format!(
                    "{{\"schema\":\"{PLAN_SCHEMA}\",\"count\":{count},\"points\":{},\
                     \"fingerprint\":\"{fp:016x}\",\"owners\":\"{}\"}}\n",
                    owners.len(),
                    owner_list.join(",")
                ))
            }
        }
    }

    /// Writes an explicit plan file to `path` ([`ShardPlan::render`]).
    pub fn save(&self, path: &Path) -> Result<(), PlanError> {
        let text = self
            .render()
            .ok_or_else(|| malformed("stride plans have no file form"))?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, text)?;
        Ok(())
    }

    /// Parses a plan file's text, self-checking the recorded
    /// fingerprint against the recomputed one.
    pub fn parse(text: &str) -> Result<Self, PlanError> {
        let line = text.trim();
        let fields = parse_flat_json(line)
            .ok_or_else(|| malformed("plan file is not a flat JSON object"))?;
        let get = |key: &str| -> Result<&JsonValue, PlanError> {
            fields
                .iter()
                .find(|(k, _)| k.as_str() == key)
                .map(|(_, v)| v)
                .ok_or_else(|| malformed(format!("missing key {key:?}")))
        };
        match get("schema")? {
            JsonValue::Str(s) if s == PLAN_SCHEMA => {}
            other => return Err(malformed(format!("bad schema {other:?}"))),
        }
        let count = match get("count")? {
            JsonValue::Num { raw, .. } => raw
                .parse::<usize>()
                .map_err(|_| malformed("count is not an integer"))?,
            other => return Err(malformed(format!("bad count {other:?}"))),
        };
        if count == 0 {
            return Err(malformed("count must be >= 1"));
        }
        let points = match get("points")? {
            JsonValue::Num { raw, .. } => raw
                .parse::<usize>()
                .map_err(|_| malformed("points is not an integer"))?,
            other => return Err(malformed(format!("bad points {other:?}"))),
        };
        let recorded_fp = match get("fingerprint")? {
            JsonValue::Str(s) => {
                u64::from_str_radix(s, 16).map_err(|_| malformed("fingerprint is not a hex u64"))?
            }
            other => return Err(malformed(format!("bad fingerprint {other:?}"))),
        };
        let owners_str = match get("owners")? {
            JsonValue::Str(s) => s.clone(),
            other => return Err(malformed(format!("bad owners {other:?}"))),
        };
        let owners: Vec<u32> = if owners_str.is_empty() {
            Vec::new()
        } else {
            owners_str
                .split(',')
                .map(|t| t.parse::<u32>().map_err(|_| malformed("non-integer owner")))
                .collect::<Result<_, _>>()?
        };
        if owners.len() != points {
            return Err(malformed(format!(
                "owners list has {} entries, points says {points}",
                owners.len()
            )));
        }
        if let Some(bad) = owners.iter().find(|&&o| o as usize >= count) {
            return Err(malformed(format!(
                "owner {bad} out of range for {count} shards"
            )));
        }
        let plan = ShardPlan::Explicit { count, owners };
        let fp = plan.fingerprint().expect("explicit");
        if fp != recorded_fp {
            return Err(malformed(format!(
                "fingerprint mismatch: file says {recorded_fp:016x}, assignment hashes to {fp:016x}"
            )));
        }
        Ok(plan)
    }

    /// Loads and self-checks a plan file from `path`.
    pub fn load(path: &Path) -> Result<Self, PlanError> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text)
    }

    /// Validates the plan against a grid: explicit plans must cover
    /// exactly `points` points and fit `count` shards.
    pub fn check_grid(&self, count: usize, points: usize) -> Result<(), PlanError> {
        if self.count() != count {
            return Err(malformed(format!(
                "plan is cut for {} shards, run uses {count}",
                self.count()
            )));
        }
        if let Some(n) = self.points() {
            if n != points {
                return Err(malformed(format!(
                    "plan covers {n} points, grid has {points}"
                )));
            }
        }
        Ok(())
    }
}

/// One row of a per-point times file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimesEntry {
    /// Global point index.
    pub index: usize,
    /// Shots the timed run executed for this point.
    pub shots: u64,
    /// Busy nanoseconds summed over the point's chunks.
    pub nanos: u64,
}

/// A parsed `vlq-sweep-times-v1` file ([`crate::sink::TimesSink`]'s
/// output): the calibration input of [`ShardPlan::from_costs`].
#[derive(Clone, Debug, Default)]
pub struct TimesFile {
    /// Base seed of the run that produced the times.
    pub seed: u64,
    /// One entry per completed point, in emission order.
    pub entries: Vec<TimesEntry>,
}

impl TimesFile {
    /// Per-point costs indexed by global point index `0..points`.
    /// Every index must be covered exactly once.
    pub fn costs(&self, points: usize) -> Result<Vec<u64>, PlanError> {
        let mut costs = vec![None; points];
        for e in &self.entries {
            if e.index >= points {
                return Err(malformed(format!(
                    "times entry index {} out of range for {points} points",
                    e.index
                )));
            }
            if costs[e.index].replace(e.nanos).is_some() {
                return Err(malformed(format!(
                    "duplicate times entry for index {}",
                    e.index
                )));
            }
        }
        costs
            .into_iter()
            .enumerate()
            .map(|(i, c)| c.ok_or_else(|| malformed(format!("no times entry for index {i}"))))
            .collect()
    }
}

/// Loads a per-point times file written by a `--times` run.
pub fn load_times(path: &Path) -> Result<TimesFile, PlanError> {
    let text = std::fs::read_to_string(path)?;
    parse_times(&text)
}

/// Parses the text of a per-point times file.
pub fn parse_times(text: &str) -> Result<TimesFile, PlanError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| malformed("times file is empty"))?;
    let fields = parse_flat_json(header)
        .ok_or_else(|| malformed("times header is not a flat JSON object"))?;
    let get = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k.as_str() == key)
            .map(|(_, v)| v)
    };
    match get("schema") {
        Some(JsonValue::Str(s)) if s == TIMES_SCHEMA => {}
        other => return Err(malformed(format!("bad times schema {other:?}"))),
    }
    let seed = match get("seed") {
        Some(JsonValue::Num { raw, .. }) => raw
            .parse::<u64>()
            .map_err(|_| malformed("seed is not an integer"))?,
        other => return Err(malformed(format!("bad times seed {other:?}"))),
    };
    let mut entries = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_flat_json(line)
            .ok_or_else(|| malformed(format!("times line {} is not flat JSON", lineno + 1)))?;
        let num = |key: &str| -> Result<u64, PlanError> {
            match fields
                .iter()
                .find(|(k, _)| k.as_str() == key)
                .map(|(_, v)| v)
            {
                Some(JsonValue::Num { raw, .. }) => raw.parse::<u64>().map_err(|_| {
                    malformed(format!("line {}: {key} is not an integer", lineno + 1))
                }),
                other => Err(malformed(format!(
                    "line {}: bad {key} {other:?}",
                    lineno + 1
                ))),
            }
        };
        entries.push(TimesEntry {
            index: num("index")? as usize,
            shots: num("shots")?,
            nanos: num("nanos")?,
        });
    }
    Ok(TimesFile { seed, entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_plan_matches_modulo() {
        let plan = ShardPlan::stride(3);
        for g in 0..20 {
            assert_eq!(plan.owner_of(g), Some(g % 3));
            assert!(plan.owns(g % 3, g));
        }
        assert_eq!(plan.fingerprint(), None);
        assert_eq!(plan.points(), None);
        assert!(plan.render().is_none());
    }

    #[test]
    fn lpt_balances_skewed_costs() {
        // One huge point and many small ones: LPT must isolate the
        // huge point and spread the rest.
        let mut costs = vec![10u64; 9];
        costs[0] = 1000;
        let plan = ShardPlan::from_costs(3, &costs);
        let loads: Vec<u64> = (0..3)
            .map(|s| {
                costs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| plan.owns(s, *i))
                    .map(|(_, &c)| c)
                    .sum()
            })
            .collect();
        // The huge point's shard gets nothing else.
        let huge = plan.owner_of(0).unwrap();
        assert_eq!(loads[huge], 1000);
        // The other 8 small points split 4/4.
        let others: Vec<u64> = (0..3).filter(|&s| s != huge).map(|s| loads[s]).collect();
        assert_eq!(others, vec![40, 40]);
        // Deterministic: same inputs, same plan.
        assert_eq!(plan, ShardPlan::from_costs(3, &costs));
    }

    #[test]
    fn explicit_plan_round_trips_through_file_form() {
        let plan = ShardPlan::from_costs(3, &[5, 1, 9, 2, 2, 7, 1, 1]);
        let text = plan.render().unwrap();
        let back = ShardPlan::parse(&text).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.fingerprint(), plan.fingerprint());
    }

    #[test]
    fn parse_rejects_tampering() {
        let plan = ShardPlan::from_costs(2, &[3, 1, 4, 1, 5]);
        let text = plan.render().unwrap();
        // Flip one owner: the recorded fingerprint no longer matches.
        let tampered = if text.contains("\"owners\":\"0") {
            text.replacen("\"owners\":\"0", "\"owners\":\"1", 1)
        } else {
            text.replacen("\"owners\":\"1", "\"owners\":\"0", 1)
        };
        assert!(matches!(
            ShardPlan::parse(&tampered),
            Err(PlanError::Malformed { .. })
        ));
        // Out-of-range owner.
        assert!(ShardPlan::parse(
            "{\"schema\":\"vlq-shard-plan-v1\",\"count\":2,\"points\":1,\
             \"fingerprint\":\"0000000000000000\",\"owners\":\"7\"}"
        )
        .is_err());
        // Wrong schema.
        assert!(ShardPlan::parse(
            "{\"schema\":\"nope\",\"count\":1,\"points\":0,\
             \"fingerprint\":\"0\",\"owners\":\"\"}"
        )
        .is_err());
    }

    #[test]
    fn grid_check_catches_mismatches() {
        let plan = ShardPlan::from_costs(2, &[1, 2, 3]);
        assert!(plan.check_grid(2, 3).is_ok());
        assert!(plan.check_grid(3, 3).is_err());
        assert!(plan.check_grid(2, 4).is_err());
        // Stride plans fit any point count.
        assert!(ShardPlan::stride(2).check_grid(2, 99).is_ok());
    }

    #[test]
    fn times_file_round_trip_and_cost_extraction() {
        let text = "{\"schema\":\"vlq-sweep-times-v1\",\"seed\":2020}\n\
                    {\"index\":1,\"shots\":100,\"nanos\":500}\n\
                    {\"index\":0,\"shots\":100,\"nanos\":900}\n";
        let times = parse_times(text).unwrap();
        assert_eq!(times.seed, 2020);
        assert_eq!(times.entries.len(), 2);
        assert_eq!(times.costs(2).unwrap(), vec![900, 500]);
        // Missing index 2.
        assert!(times.costs(3).is_err());
        // Bad header.
        assert!(parse_times("{\"schema\":\"x\",\"seed\":1}\n").is_err());
    }
}
