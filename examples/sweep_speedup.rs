//! Demonstrates the point of the `vlq-sweep` work-stealing engine: a
//! threshold-style scan over many configs parallelizes across
//! *configs × shots*, while the pre-engine path ran configs serially.
//!
//! Runs the same 8-config grid (d ∈ {3,5} × p ∈ {4e-3, 8e-3} × both
//! decoders) three ways and prints wall-clock times:
//!
//!   1. serial per-config loop (one `run_memory_experiment` per config,
//!      single-threaded) — the old scan shape;
//!   2. the sweep engine with 1 worker (overhead check);
//!   3. the sweep engine with N workers (N = available parallelism,
//!      or the `VLQ_SWEEP_WORKERS` env var).
//!
//! On a multi-core machine (3) beats (1) roughly by min(N, #configs)×;
//! on a single-core container all three tie. Either way the records are
//! identical — the engine's seeding is schedule-independent.

use std::time::Instant;

use vlq::decoder::DecoderKind;
use vlq::qec::{config_for_point, run_memory_experiment, run_sweep_with};
use vlq::surface::schedule::Setup;
use vlq::sweep::{SweepEngine, SweepSpec};

fn main() {
    let shots = 4000;
    let spec = SweepSpec::new()
        .setups([Setup::Baseline])
        .distances([3, 5])
        .error_rates([4e-3, 8e-3])
        .decoders([DecoderKind::Mwpm, DecoderKind::UnionFind])
        .shots(shots)
        .base_seed(2020);
    let points = spec.expand();
    println!(
        "scan: {} configs x {} shots (d in {{3,5}}, two error rates, both decoders)",
        points.len(),
        shots
    );

    // 1. Serial per-config path: what threshold scans did before the
    // engine — each config in sequence, single-threaded.
    let t0 = Instant::now();
    let mut serial_failures = 0u64;
    for pt in &points {
        let cfg = config_for_point(pt).with_threads(1);
        serial_failures += run_memory_experiment(&cfg).failures;
    }
    let t_serial = t0.elapsed();
    println!("serial per-config loop:      {t_serial:>8.2?}");

    // 2. Engine, 1 worker: same schedule shape, engine overhead only.
    let t0 = Instant::now();
    let recs1 = run_sweep_with(&spec, &SweepEngine::serial(), &mut []).unwrap();
    let t_one = t0.elapsed();
    println!("sweep engine, 1 worker:      {t_one:>8.2?}");

    // 3. Engine, N workers: work-stealing across configs x shots.
    let workers = std::env::var("VLQ_SWEEP_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let t0 = Instant::now();
    let recs_n = run_sweep_with(&spec, &SweepEngine::with_workers(workers), &mut []).unwrap();
    let t_many = t0.elapsed();
    println!("sweep engine, {workers} worker(s):   {t_many:>8.2?}");

    assert_eq!(recs1, recs_n, "engine results must not depend on workers");
    println!(
        "\nspeedup vs serial loop: {:.2}x (engine@{workers})",
        t_serial.as_secs_f64() / t_many.as_secs_f64()
    );
    let engine_failures: u64 = recs_n.iter().map(|r| r.failures).sum();
    println!(
        "total failures: serial {serial_failures}, engine {engine_failures} \
         (differ only by seed schedule, not by correctness)"
    );
}
