//! Program-level logical error rates: compile one logical program once,
//! then run the same typed schedule through all three executor backends
//! — latency (`CostExecutor`), fidelity (`FrameExecutor`), and a trace
//! artifact (`TraceExecutor`).
//!
//! Run: `cargo run --release --example program_error_rate`
//! (set `VLQ_BENCH_QUICK=1` for a CI-sized run)

use vlq::arch::geometry::Embedding;
use vlq::decoder::DecoderKind;
use vlq::exec::{CostExecutor, Executor, FrameExecutor, TraceExecutor};
use vlq::machine::MachineConfig;
use vlq::program::{compile, LogicalCircuit};

fn main() {
    let quick = std::env::var("VLQ_BENCH_QUICK").is_ok_and(|v| v == "1");
    let shots: u64 = if quick { 300 } else { 3000 };
    let distances: &[usize] = if quick { &[3, 5] } else { &[3, 5, 7] };
    let p = 1e-3;

    println!(
        "GHZ-4 on a 2x2 natural-interleaved machine (k = 3), p = {p:e}, {shots} shots/point\n"
    );
    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>14}",
        "d", "timesteps", "blocks/shot", "failures", "logical rate"
    );
    for &d in distances {
        let mut cfg = MachineConfig::compact_demo();
        cfg.embedding = Embedding::Natural;
        cfg.k = 3;
        cfg.d = d;
        let compiled = compile(&LogicalCircuit::ghz(4), cfg).expect("ghz4 fits the demo machine");

        // Latency: identical at every distance (timesteps are the unit).
        let cost = CostExecutor
            .run(&compiled.schedule)
            .expect("valid schedule");

        // Fidelity: replay on the Pauli-frame simulator, decoding every
        // refresh round; the residual logical error rate falls with d.
        let frame = FrameExecutor::at_scale(p)
            .with_decoder(DecoderKind::Mwpm)
            .with_shots(shots)
            .run(&compiled.schedule)
            .expect("valid schedule");

        println!(
            "{:>4} {:>10} {:>12} {:>12} {:>14.4e}",
            d,
            cost.total_timesteps,
            frame.blocks_per_shot,
            frame.failures,
            frame.logical_error_rate()
        );
    }

    // The same schedule as a machine-readable trace (first rows shown;
    // `Table::write_dir` emits CSV/JSONL for diffing).
    let compiled =
        compile(&LogicalCircuit::ghz(4), MachineConfig::compact_demo()).expect("compiles");
    let trace = TraceExecutor
        .run(&compiled.schedule)
        .expect("valid schedule");
    let mut csv = Vec::new();
    trace.write_csv(&mut csv).expect("in-memory write");
    let text = String::from_utf8(csv).expect("utf8");
    println!("\n== schedule trace (first 12 rows of {}) ==", trace.len());
    for line in text.lines().take(13) {
        println!("{line}");
    }
}
