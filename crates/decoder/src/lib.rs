//! Decoders for the VLQ reproduction.
//!
//! The decoding pipeline mirrors the modern detector-error-model
//! approach:
//!
//! 1. [`graph`] builds a per-sector matching graph by exhaustively
//!    propagating every possible single fault of the noisy circuit and
//!    recording which detectors (and logical observables) it flips,
//!    with edge weights `ln((1-p)/p)`.
//! 2. [`mwpm`] decodes a defect set by Dijkstra distances on that graph
//!    followed by exact minimum-weight perfect matching ([`blossom`]) —
//!    the paper's "usual maximum likelihood [matching] decoder".
//! 3. [`unionfind`] offers the weighted Union-Find decoder as a faster
//!    alternative (used in the decoder ablation bench).

pub mod blossom;
pub mod graph;
pub mod mwpm;
pub mod unionfind;

pub use graph::{DecodingGraph, GraphEdge};
pub use mwpm::MwpmDecoder;
pub use unionfind::UnionFindDecoder;

/// Common interface for sector decoders: given the defect list (indices
/// into the sector's detector set), predict whether the logical
/// observable flipped.
pub trait Decoder {
    /// Predicts the observable flip for a defect set.
    fn decode(&self, defects: &[usize]) -> bool;
}
