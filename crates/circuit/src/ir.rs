//! Circuit intermediate representation.
//!
//! A [`Circuit`] is a flat instruction list over physical qubits
//! (transmons *and* cavity modes both get qubit indices), plus the
//! *detector* and *observable* annotations that turn measurement records
//! into decodable detection events — the same structure popularized by
//! stim's detector error models.
//!
//! Schedules (in `vlq-surface`) build ideal circuits containing gates,
//! measurements, resets, and explicit `Idle` markers carrying durations;
//! the [`crate::noise`] pass then rewrites idles into Pauli channels and
//! attaches gate/measurement noise according to the hardware model.

use vlq_sim::CliffordGate;

/// Classification of a gate for noise purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GateClass {
    /// Single-qubit gate on a transmon.
    OneQubit,
    /// Transmon-transmon two-qubit gate (SC-SC).
    TwoQubitTT,
    /// Transmon-cavity-mode two-qubit gate (SC-mode).
    TwoQubitTM,
    /// Load/store: transmon-mediated iSWAP between transmon and mode.
    LoadStore,
}

/// Storage medium a qubit idles in (which T1 applies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Medium {
    /// Idling in a transmon.
    Transmon,
    /// Idling in a cavity mode.
    Cavity,
}

/// What kind of physical site a qubit index refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QubitKind {
    /// A computational transmon.
    Transmon,
    /// A resonant-cavity mode (storage only; operations are mediated by
    /// its transmon).
    CavityMode,
}

/// Debug/visualization metadata for a qubit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QubitMeta {
    /// Site kind.
    pub kind: QubitKind,
    /// `(x, y, z)` coordinate; `z = 0` is the transmon layer, `z = m + 1`
    /// is cavity mode `m`.
    pub pos: (i32, i32, i32),
}

impl Default for QubitMeta {
    fn default() -> Self {
        QubitMeta {
            kind: QubitKind::Transmon,
            pos: (0, 0, 0),
        }
    }
}

/// One circuit instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instruction {
    /// An ideal Clifford gate with its noise class.
    Gate {
        /// The gate.
        gate: CliffordGate,
        /// Noise classification.
        class: GateClass,
    },
    /// Z-basis measurement, appending one record entry. `flip_prob` is
    /// the classical readout-flip probability (0 until the noise pass).
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Readout flip probability.
        flip_prob: f64,
    },
    /// Reset to `|0>`.
    Reset {
        /// Reset qubit.
        qubit: usize,
    },
    /// Idle marker: the qubit waits `duration` seconds in `medium`.
    /// Replaced by a Pauli channel in the noise pass.
    Idle {
        /// Idling qubit.
        qubit: usize,
        /// Idle duration in seconds.
        duration: f64,
        /// Which coherence time applies.
        medium: Medium,
    },
    /// Uniform single-qubit Pauli channel: X, Y, or Z each with `p / 3`.
    Noise1 {
        /// Affected qubit.
        qubit: usize,
        /// Total error probability.
        p: f64,
    },
    /// Uniform two-qubit Pauli channel: each of the 15 non-identity pairs
    /// with `p / 15`.
    Noise2 {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
        /// Total error probability.
        p: f64,
    },
}

/// A detector: a set of measurement-record indices whose XOR is
/// deterministic (zero) in the noiseless reference run.
#[derive(Clone, Debug, PartialEq)]
pub struct Detector {
    /// Indices into the measurement record.
    pub measurements: Vec<usize>,
    /// Diagnostic coordinate `(x, y, time)`.
    pub coord: (i32, i32, i32),
}

/// A complete circuit with detector/observable annotations.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    /// Number of qubits (transmons + cavity modes).
    pub num_qubits: usize,
    /// Flat instruction list.
    pub instructions: Vec<Instruction>,
    /// Detector definitions.
    pub detectors: Vec<Detector>,
    /// Logical observables: sets of measurement indices whose XOR gives
    /// the logical outcome.
    pub observables: Vec<Vec<usize>>,
    /// Optional per-qubit metadata (empty or `num_qubits` long).
    pub qubit_meta: Vec<QubitMeta>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            ..Default::default()
        }
    }

    /// Total number of measurements in the circuit.
    pub fn num_measurements(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Measure { .. }))
            .count()
    }

    /// Appends a gate.
    pub fn gate(&mut self, gate: CliffordGate, class: GateClass) -> &mut Self {
        self.check_gate(gate);
        self.instructions.push(Instruction::Gate { gate, class });
        self
    }

    /// Appends a measurement and returns its record index.
    pub fn measure(&mut self, qubit: usize) -> usize {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        let idx = self.num_measurements();
        self.instructions.push(Instruction::Measure {
            qubit,
            flip_prob: 0.0,
        });
        idx
    }

    /// Appends a reset.
    pub fn reset(&mut self, qubit: usize) -> &mut Self {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        self.instructions.push(Instruction::Reset { qubit });
        self
    }

    /// Appends an idle marker.
    pub fn idle(&mut self, qubit: usize, duration: f64, medium: Medium) -> &mut Self {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        assert!(duration >= 0.0, "idle duration must be non-negative");
        if duration > 0.0 {
            self.instructions.push(Instruction::Idle {
                qubit,
                duration,
                medium,
            });
        }
        self
    }

    /// Declares a detector over the given measurement indices.
    ///
    /// # Panics
    ///
    /// Panics if any index refers to a measurement that does not exist
    /// yet.
    pub fn detector(&mut self, measurements: Vec<usize>, coord: (i32, i32, i32)) -> usize {
        let n = self.num_measurements();
        for &m in &measurements {
            assert!(m < n, "detector references future measurement {m}");
        }
        self.detectors.push(Detector {
            measurements,
            coord,
        });
        self.detectors.len() - 1
    }

    /// Declares a logical observable over measurement indices; returns its
    /// index.
    pub fn observable(&mut self, measurements: Vec<usize>) -> usize {
        let n = self.num_measurements();
        for &m in &measurements {
            assert!(m < n, "observable references future measurement {m}");
        }
        self.observables.push(measurements);
        self.observables.len() - 1
    }

    fn check_gate(&self, gate: CliffordGate) {
        let (a, b) = gate.qubits();
        assert!(a < self.num_qubits, "qubit {a} out of range");
        if let Some(b) = b {
            assert!(b < self.num_qubits, "qubit {b} out of range");
            assert_ne!(a, b, "two-qubit gate on identical qubits");
        }
    }

    /// Counts instructions of each broad kind `(gates, measures, resets,
    /// idles, noise)`.
    pub fn instruction_census(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for i in &self.instructions {
            match i {
                Instruction::Gate { .. } => c.0 += 1,
                Instruction::Measure { .. } => c.1 += 1,
                Instruction::Reset { .. } => c.2 += 1,
                Instruction::Idle { .. } => c.3 += 1,
                Instruction::Noise1 { .. } | Instruction::Noise2 { .. } => c.4 += 1,
            }
        }
        c
    }

    /// Validates structural invariants (indices in range, detectors refer
    /// to real measurements).
    pub fn check(&self) -> Result<(), String> {
        let n_meas = self.num_measurements();
        for d in &self.detectors {
            if d.measurements.is_empty() {
                return Err("empty detector".into());
            }
            for &m in &d.measurements {
                if m >= n_meas {
                    return Err(format!("detector measurement {m} out of range"));
                }
            }
        }
        for o in &self.observables {
            for &m in o {
                if m >= n_meas {
                    return Err(format!("observable measurement {m} out of range"));
                }
            }
        }
        if !self.qubit_meta.is_empty() && self.qubit_meta.len() != self.num_qubits {
            return Err("qubit_meta length mismatch".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_circuit() {
        let mut c = Circuit::new(3);
        c.gate(CliffordGate::H(0), GateClass::OneQubit);
        c.gate(CliffordGate::Cnot(0, 1), GateClass::TwoQubitTT);
        let m0 = c.measure(0);
        let m1 = c.measure(1);
        assert_eq!((m0, m1), (0, 1));
        c.detector(vec![m0, m1], (0, 0, 0));
        c.observable(vec![m0]);
        c.check().unwrap();
        assert_eq!(c.num_measurements(), 2);
        let (g, m, r, i, n) = c.instruction_census();
        assert_eq!((g, m, r, i, n), (2, 2, 0, 0, 0));
    }

    #[test]
    fn idle_zero_duration_elided() {
        let mut c = Circuit::new(1);
        c.idle(0, 0.0, Medium::Cavity);
        assert!(c.instructions.is_empty());
        c.idle(0, 1e-6, Medium::Cavity);
        assert_eq!(c.instructions.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gate_bounds_checked() {
        let mut c = Circuit::new(2);
        c.gate(CliffordGate::H(2), GateClass::OneQubit);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn two_qubit_gate_distinct() {
        let mut c = Circuit::new(2);
        c.gate(CliffordGate::Cnot(1, 1), GateClass::TwoQubitTT);
    }

    #[test]
    #[should_panic(expected = "future measurement")]
    fn detector_cannot_reference_future() {
        let mut c = Circuit::new(1);
        c.detector(vec![0], (0, 0, 0));
    }
}
