//! Logical operations on virtualized surface-code qubits: the transversal
//! CNOT (paper §III-B), lattice-surgery operations (Figures 4 and 9), and
//! the move operation — with their timestep cost model and full
//! verification of the transversal CNOT by stabilizer conjugation and
//! state-vector process checks.
//!
//! One *timestep* is `d` error-correction rounds (the paper's unit). The
//! headline: a lattice-surgery CNOT takes 6 timesteps; the transversal
//! CNOT between two logical qubits co-located in a stack takes 1.

pub mod ops;
pub mod transversal;

pub use ops::{LogicalOp, TIMESTEP_ROUNDS};
pub use transversal::{
    transversal_cnot_gates, verify_transversal_cnot_statevector, verify_transversal_cnot_tableau,
    TwoPatchCode,
};
