//! Regenerates Table II: transmon, cavity, and total qubit costs of each
//! T-state generation protocol at d = 5 with depth-10 cavities.

use vlq_magic::factory::FactoryProtocol;

fn main() {
    let d = 5;
    let k = 10;
    println!("Table II: qubit costs of each T-state protocol (d = {d}, depth-{k} cavities)");
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "Protocol", "# transmons", "# cavities", "total qubits"
    );
    let paper: [(&str, usize, &str, usize); 4] = [
        ("Fast Lattice [21]", 1499, "-", 1499),
        ("Small Lattice [12]", 549, "-", 549),
        ("VQubits (natural)", 49, "25", 299),
        ("VQubits (compact)", 29, "25", 279),
    ];
    for (proto, expected) in FactoryProtocol::all().iter().zip(paper.iter()) {
        let cost = proto.hardware_cost(d, k);
        let cav = if cost.cavities == 0 {
            "-".to_string()
        } else {
            cost.cavities.to_string()
        };
        println!(
            "{:<22} {:>12} {:>12} {:>14}",
            proto.kind.to_string(),
            cost.transmons,
            cav,
            cost.total_qubits()
        );
        assert_eq!(cost.transmons, expected.1, "transmons mismatch vs paper");
        assert_eq!(cost.total_qubits(), expected.3, "total mismatch vs paper");
    }
    println!("\nAll rows match the paper exactly.");
}
