//! Circuit executors.
//!
//! Three ways to run a [`Circuit`]:
//!
//! * [`sample_batch`] — Monte-Carlo: runs 64-shot-per-word Pauli-frame
//!   batches and reduces measurements to detection events and observable
//!   flips.
//! * [`propagate_fault`] — deterministic: injects one fault at a given
//!   site and reports exactly which detectors/observables flip (used to
//!   build matching graphs).
//! * [`validate_with_tableau`] — runs the *ideal* part of the circuit on
//!   the stabilizer simulator and checks that every detector is
//!   deterministic (XOR = 0) and every observable is deterministic; this
//!   is the gate every generated schedule must pass.

use rand::Rng;
use vlq_pauli::Pauli;
use vlq_sim::tableau::MeasureOutcome;
use vlq_sim::{FrameBatch, SingleFrame, Tableau};

use crate::ir::{Circuit, Instruction};

/// The result of sampling a batch of shots.
#[derive(Clone, Debug, Default)]
pub struct BatchResult {
    /// Number of shot lanes.
    pub n_lanes: usize,
    /// Detection events: `detectors[d]` holds one bit per lane (packed).
    pub detectors: Vec<Vec<u64>>,
    /// Observable flips: `observables[o]` holds one bit per lane.
    pub observables: Vec<Vec<u64>>,
}

impl BatchResult {
    /// Reads detector `d` for `lane`.
    pub fn detector_bit(&self, d: usize, lane: usize) -> bool {
        self.detectors[d][lane / 64] >> (lane % 64) & 1 == 1
    }

    /// Reads observable `o` for `lane`.
    pub fn observable_bit(&self, o: usize, lane: usize) -> bool {
        self.observables[o][lane / 64] >> (lane % 64) & 1 == 1
    }

    /// The packed per-lane flip words of observable `o` (one bit per
    /// lane; tail bits beyond `n_lanes` are zero).
    pub fn observable_words(&self, o: usize) -> &[u64] {
        &self.observables[o]
    }

    /// The defect list (flipped detectors) of one lane, in detector
    /// order.
    pub fn defects_of_lane(&self, lane: usize) -> Vec<usize> {
        let word = lane / 64;
        let bit = 1u64 << (lane % 64);
        let mut defects = Vec::new();
        for (d, col) in self.detectors.iter().enumerate() {
            for_each_set_lane(&[col[word] & bit], |_| defects.push(d));
        }
        defects
    }

    /// Word-scan transpose of a detector subset: clears the first
    /// `lanes` entries of `lists` and fills `lists[lane]` with the
    /// *local* indices (positions within `detectors`) of the detectors
    /// whose bit is set for that lane, in increasing local order.
    ///
    /// This visits only *set* bits (`trailing_zeros` over the packed
    /// columns), so the cost is O(detectors·words + defects) instead of
    /// the O(lanes·detectors) of probing [`BatchResult::detector_bit`]
    /// per lane. Tail bits beyond `n_lanes` are zero by construction,
    /// so every visited lane is `< lanes`.
    pub fn defect_lists_into(
        &self,
        detectors: &[usize],
        lanes: usize,
        lists: &mut Vec<Vec<usize>>,
    ) {
        if lists.len() < lanes {
            // Seed fresh lists with a little capacity: typical defect
            // counts are single-digit, and first-touch growth would
            // otherwise trickle allocations across many steady-state
            // batches (one per lane the first time it sees a defect).
            lists.resize_with(lanes, || Vec::with_capacity(16));
        }
        for list in &mut lists[..lanes] {
            list.clear();
        }
        let words = lanes.div_ceil(64).max(1);
        for (local, &global) in detectors.iter().enumerate() {
            for_each_set_lane(&self.detectors[global][..words], |lane| {
                debug_assert!(lane < lanes, "tail bit set beyond n_lanes");
                lists[lane].push(local);
            });
        }
    }
}

/// Visits every set bit of a packed lane column as its lane index, in
/// increasing lane order (the word-scan shared by all defect
/// extraction paths).
#[inline]
pub fn for_each_set_lane(words: &[u64], mut visit: impl FnMut(usize)) {
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            visit(w * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

/// Reusable working memory for [`sample_batch_into`]: the frame batch,
/// the measurement records, and the reduced detector/observable
/// accumulators. Owning one across batches makes steady-state sampling
/// allocation-free (buffers are cleared and refilled, never dropped).
#[derive(Debug, Default)]
pub struct SampleScratch {
    frames: Option<FrameBatch>,
    records: Vec<Vec<u64>>,
    /// The last batch's reduced result (valid after
    /// [`sample_batch_into`] returns; accumulators are reused).
    pub result: BatchResult,
}

impl SampleScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs `n_lanes` Monte-Carlo shots of a noisy circuit.
///
/// Noise instructions must already be present (see
/// [`crate::noise::NoiseModel::apply`]); `Idle` markers are ignored if
/// they survived (they carry no sampled noise).
pub fn sample_batch<R: Rng + ?Sized>(
    circuit: &Circuit,
    n_lanes: usize,
    rng: &mut R,
) -> BatchResult {
    let mut scratch = SampleScratch::new();
    sample_batch_into(circuit, n_lanes, rng, &mut scratch);
    scratch.result
}

/// [`sample_batch`] into caller-owned scratch: identical RNG stream and
/// bit-identical `scratch.result`, but steady-state calls reuse every
/// buffer instead of reallocating per batch.
pub fn sample_batch_into<R: Rng + ?Sized>(
    circuit: &Circuit,
    n_lanes: usize,
    rng: &mut R,
    scratch: &mut SampleScratch,
) {
    let frames = match &mut scratch.frames {
        Some(f) if f.num_qubits() == circuit.num_qubits && f.num_lanes() == n_lanes => {
            f.clear();
            f
        }
        slot => slot.insert(FrameBatch::new(circuit.num_qubits, n_lanes)),
    };
    let records = &mut scratch.records;
    let mut used = 0usize;
    for inst in &circuit.instructions {
        match *inst {
            Instruction::Gate { gate, .. } => frames.apply(gate),
            Instruction::Measure { qubit, flip_prob } => {
                if used == records.len() {
                    records.push(Vec::new());
                }
                let rec = &mut records[used];
                used += 1;
                frames.measure_z_into(qubit, rec);
                if flip_prob > 0.0 {
                    FrameBatch::apply_record_noise(rec, n_lanes, flip_prob, rng);
                }
                // Measurement projection gauge: randomize the frame's Z
                // component on the measured qubit (harmless for our
                // measure-then-reset ancillas, required in general).
                frames.randomize_z(qubit, rng);
            }
            Instruction::Reset { qubit } => frames.reset_qubit(qubit),
            Instruction::Idle { .. } => {}
            Instruction::Noise1 { qubit, p } => frames.apply_1q_noise(qubit, p, rng),
            Instruction::Noise2 { a, b, p } => frames.apply_2q_noise(a, b, p, rng),
        }
    }
    reduce_records(circuit, n_lanes, &records[..used], &mut scratch.result);
}

fn reduce_records(circuit: &Circuit, n_lanes: usize, records: &[Vec<u64>], out: &mut BatchResult) {
    let words = n_lanes.div_ceil(64).max(1);
    let xor_into = |acc: &mut Vec<u64>, measurements: &[usize]| {
        acc.clear();
        acc.resize(words, 0);
        for &m in measurements {
            for (a, b) in acc.iter_mut().zip(&records[m]) {
                *a ^= b;
            }
        }
    };
    out.n_lanes = n_lanes;
    out.detectors.resize_with(circuit.detectors.len(), Vec::new);
    for (acc, det) in out.detectors.iter_mut().zip(&circuit.detectors) {
        xor_into(acc, &det.measurements);
    }
    out.observables
        .resize_with(circuit.observables.len(), Vec::new);
    for (acc, obs) in out.observables.iter_mut().zip(&circuit.observables) {
        xor_into(acc, obs);
    }
}

/// A place in the circuit where a fault can occur.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A Pauli error on one qubit immediately after instruction `at`.
    Pauli1 {
        /// Instruction index.
        at: usize,
        /// Affected qubit.
        qubit: usize,
        /// Injected Pauli.
        pauli: Pauli,
    },
    /// A two-qubit Pauli error after instruction `at`.
    Pauli2 {
        /// Instruction index.
        at: usize,
        /// First qubit and its Pauli.
        a: (usize, Pauli),
        /// Second qubit and its Pauli.
        b: (usize, Pauli),
    },
    /// A recorded-measurement flip of instruction `at`.
    MeasureFlip {
        /// Instruction index (must be a `Measure`).
        at: usize,
    },
}

/// The deterministic effect of one fault.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultEffect {
    /// Flipped detector indices (sorted).
    pub detectors: Vec<usize>,
    /// Flipped observable indices (sorted).
    pub observables: Vec<usize>,
}

/// Propagates a single fault through the circuit and reports which
/// detectors and observables flip.
///
/// # Panics
///
/// Panics if the site's instruction index is out of range or a
/// `MeasureFlip` site does not point at a measurement.
pub fn propagate_fault(circuit: &Circuit, site: FaultSite) -> FaultEffect {
    let start = match site {
        FaultSite::Pauli1 { at, .. }
        | FaultSite::Pauli2 { at, .. }
        | FaultSite::MeasureFlip { at } => at,
    };
    assert!(
        start < circuit.instructions.len(),
        "fault site out of range"
    );

    // Measurement indices are global; count how many precede `start`.
    let mut meas_index = circuit.instructions[..start]
        .iter()
        .filter(|i| matches!(i, Instruction::Measure { .. }))
        .count();

    let mut frame = SingleFrame::new(circuit.num_qubits);
    let mut flipped_measurements: Vec<usize> = Vec::new();

    // Inject the fault. Pauli faults apply *after* instruction `start`
    // executes; a MeasureFlip flips that measurement's record.
    match site {
        FaultSite::Pauli1 { qubit, pauli, .. } => {
            run_instruction(
                circuit,
                start,
                &mut frame,
                &mut meas_index,
                &mut flipped_measurements,
            );
            frame.mul_pauli(qubit, pauli);
        }
        FaultSite::Pauli2 { a, b, .. } => {
            run_instruction(
                circuit,
                start,
                &mut frame,
                &mut meas_index,
                &mut flipped_measurements,
            );
            frame.mul_pauli(a.0, a.1);
            frame.mul_pauli(b.0, b.1);
        }
        FaultSite::MeasureFlip { at } => {
            assert!(
                matches!(circuit.instructions[at], Instruction::Measure { .. }),
                "MeasureFlip site must point at a measurement"
            );
            flipped_measurements.push(meas_index);
            meas_index += 1;
            // The frame itself is untouched; skip the instruction.
        }
    }

    for idx in (start + 1)..circuit.instructions.len() {
        run_instruction(
            circuit,
            idx,
            &mut frame,
            &mut meas_index,
            &mut flipped_measurements,
        );
    }

    // Map flipped measurements to flipped detectors/observables.
    let mut effect = FaultEffect::default();
    for (d, det) in circuit.detectors.iter().enumerate() {
        let parity = det
            .measurements
            .iter()
            .filter(|m| flipped_measurements.contains(m))
            .count()
            % 2;
        if parity == 1 {
            effect.detectors.push(d);
        }
    }
    for (o, obs) in circuit.observables.iter().enumerate() {
        let parity = obs
            .iter()
            .filter(|m| flipped_measurements.contains(m))
            .count()
            % 2;
        if parity == 1 {
            effect.observables.push(o);
        }
    }
    effect
}

fn run_instruction(
    circuit: &Circuit,
    idx: usize,
    frame: &mut SingleFrame,
    meas_index: &mut usize,
    flipped: &mut Vec<usize>,
) {
    match circuit.instructions[idx] {
        Instruction::Gate { gate, .. } => frame.apply(gate),
        Instruction::Measure { qubit, .. } => {
            if frame.x_bit(qubit) {
                flipped.push(*meas_index);
            }
            *meas_index += 1;
        }
        Instruction::Reset { qubit } => frame.reset_qubit(qubit),
        Instruction::Idle { .. } | Instruction::Noise1 { .. } | Instruction::Noise2 { .. } => {}
    }
}

/// Outcome of tableau validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidationReport {
    /// Number of measurements whose ideal outcome was random.
    pub random_measurements: usize,
    /// Detector indices that came out nonzero (must be empty to pass).
    pub violated_detectors: Vec<usize>,
    /// Observable values (index, bit); all must be deterministic-0 for
    /// memory experiments that prepare the +1 logical eigenstate.
    pub observable_bits: Vec<bool>,
}

impl ValidationReport {
    /// Passing = every detector deterministic-zero.
    pub fn passed(&self) -> bool {
        self.violated_detectors.is_empty()
    }
}

/// Runs the ideal part of the circuit on the stabilizer simulator with
/// randomized outcomes for genuinely random measurements, then checks
/// every detector XORs to zero.
///
/// Any detector that fails here would mis-anchor the decoder, so schedule
/// generators call this before a circuit is eligible for Monte Carlo.
pub fn validate_with_tableau<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R) -> ValidationReport {
    let mut tableau = Tableau::new(circuit.num_qubits);
    let mut record: Vec<bool> = Vec::with_capacity(circuit.num_measurements());
    let mut random_measurements = 0usize;
    for inst in &circuit.instructions {
        match *inst {
            Instruction::Gate { gate, .. } => tableau.apply(gate),
            Instruction::Measure { qubit, .. } => {
                let out = tableau.measure_z(qubit, || rng.random::<bool>());
                if matches!(out, MeasureOutcome::Random(_)) {
                    random_measurements += 1;
                }
                record.push(out.bit());
            }
            Instruction::Reset { qubit } => tableau.reset_z(qubit, || rng.random::<bool>()),
            Instruction::Idle { .. } | Instruction::Noise1 { .. } | Instruction::Noise2 { .. } => {}
        }
    }
    let violated_detectors = circuit
        .detectors
        .iter()
        .enumerate()
        .filter(|(_, det)| {
            det.measurements
                .iter()
                .fold(false, |acc, &m| acc ^ record[m])
        })
        .map(|(d, _)| d)
        .collect();
    let observable_bits = circuit
        .observables
        .iter()
        .map(|obs| obs.iter().fold(false, |acc, &m| acc ^ record[m]))
        .collect();
    ValidationReport {
        random_measurements,
        violated_detectors,
        observable_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateClass;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vlq_sim::CliffordGate;

    /// A 3-qubit repetition-code memory circuit: two rounds of ZZ parity
    /// checks via two ancillas, then data readout.
    fn repetition_circuit(rounds: usize) -> Circuit {
        // Qubits: data 0,1,2; ancilla 3 (checks 0-1), 4 (checks 1-2).
        let mut c = Circuit::new(5);
        let mut prev: Option<(usize, usize)> = None;
        for r in 0..rounds {
            for &a in &[3usize, 4] {
                c.reset(a);
            }
            c.gate(CliffordGate::Cnot(0, 3), GateClass::TwoQubitTT);
            c.gate(CliffordGate::Cnot(1, 3), GateClass::TwoQubitTT);
            c.gate(CliffordGate::Cnot(1, 4), GateClass::TwoQubitTT);
            c.gate(CliffordGate::Cnot(2, 4), GateClass::TwoQubitTT);
            let m3 = c.measure(3);
            let m4 = c.measure(4);
            match prev {
                None => {
                    c.detector(vec![m3], (0, 0, r as i32));
                    c.detector(vec![m4], (1, 0, r as i32));
                }
                Some((p3, p4)) => {
                    c.detector(vec![m3, p3], (0, 0, r as i32));
                    c.detector(vec![m4, p4], (1, 0, r as i32));
                }
            }
            prev = Some((m3, m4));
        }
        let d0 = c.measure(0);
        let d1 = c.measure(1);
        let d2 = c.measure(2);
        let (p3, p4) = prev.unwrap();
        c.detector(vec![d0, d1, p3], (0, 0, rounds as i32));
        c.detector(vec![d1, d2, p4], (1, 0, rounds as i32));
        c.observable(vec![d0]);
        c.check().unwrap();
        c
    }

    #[test]
    fn tableau_validation_passes_for_repetition_code() {
        let c = repetition_circuit(3);
        let mut rng = SmallRng::seed_from_u64(1);
        let report = validate_with_tableau(&c, &mut rng);
        assert!(
            report.passed(),
            "violations: {:?}",
            report.violated_detectors
        );
        assert_eq!(report.observable_bits, vec![false]);
    }

    #[test]
    fn tableau_validation_catches_bad_detector() {
        let mut c = Circuit::new(1);
        c.gate(CliffordGate::X(0), GateClass::OneQubit);
        let m = c.measure(0);
        c.detector(vec![m], (0, 0, 0)); // outcome is 1, not 0 -> violated
        let mut rng = SmallRng::seed_from_u64(2);
        let report = validate_with_tableau(&c, &mut rng);
        assert!(!report.passed());
    }

    #[test]
    fn noiseless_sampling_has_no_events() {
        let c = repetition_circuit(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let res = sample_batch(&c, 256, &mut rng);
        for d in 0..c.detectors.len() {
            for lane in 0..256 {
                assert!(!res.detector_bit(d, lane));
            }
        }
        for lane in 0..256 {
            assert!(!res.observable_bit(0, lane));
        }
    }

    #[test]
    fn injected_noise_triggers_detectors() {
        let mut c = repetition_circuit(2);
        // Certain random Pauli on data 0 before everything: X and Y lanes
        // (2/3 of them) fire the round-0 detector AND flip the observable;
        // Z lanes are invisible to a Z-parity code.
        c.instructions
            .insert(0, Instruction::Noise1 { qubit: 0, p: 1.0 });
        let mut rng = SmallRng::seed_from_u64(4);
        let lanes = 64 * 64;
        let res = sample_batch(&c, lanes, &mut rng);
        let mut fired = 0usize;
        for lane in 0..lanes {
            assert_eq!(
                res.detector_bit(0, lane),
                res.observable_bit(0, lane),
                "detector and observable must agree lane {lane}"
            );
            if res.detector_bit(0, lane) {
                fired += 1;
            }
        }
        let rate = fired as f64 / lanes as f64;
        assert!((rate - 2.0 / 3.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn fault_propagation_data_error() {
        let c = repetition_circuit(2);
        // X on data qubit 1 right after the first instruction (reset of
        // ancilla 3, index 0): flips detectors of both adjacent checks in
        // round 0 — but NOT the observable (observable is data 0).
        let eff = propagate_fault(
            &c,
            FaultSite::Pauli1 {
                at: 0,
                qubit: 1,
                pauli: Pauli::X,
            },
        );
        assert_eq!(eff.detectors, vec![0, 1]);
        assert!(eff.observables.is_empty());
    }

    #[test]
    fn fault_propagation_measure_flip() {
        let c = repetition_circuit(3);
        // Find the first measurement instruction; flipping it flips the
        // round-0 and round-1 detectors of that ancilla.
        let at = c
            .instructions
            .iter()
            .position(|i| matches!(i, Instruction::Measure { .. }))
            .unwrap();
        let eff = propagate_fault(&c, FaultSite::MeasureFlip { at });
        assert_eq!(eff.detectors.len(), 2);
        assert!(eff.observables.is_empty());
    }

    #[test]
    fn fault_propagation_observable_flip() {
        let c = repetition_circuit(1);
        // X on data 0 before round 0: the round-0 check fires; the final
        // detector XORs the (flipped) data readout with the (flipped)
        // round-0 syndrome and cancels. Net: one defect at the time
        // boundary plus a logical flip — exactly what matches to the
        // boundary in decoding.
        let eff = propagate_fault(
            &c,
            FaultSite::Pauli1 {
                at: 0,
                qubit: 0,
                pauli: Pauli::X,
            },
        );
        assert_eq!(eff.observables, vec![0]);
        assert_eq!(eff.detectors, vec![0]);
    }

    #[test]
    fn monte_carlo_rate_matches_analytic_single_qubit() {
        // One qubit, one noise site with p = 0.3, measured: the observable
        // flip rate must be ~ 2p/3 (X or Y flips the Z measurement).
        let mut c = Circuit::new(1);
        c.instructions
            .push(Instruction::Noise1 { qubit: 0, p: 0.3 });
        let m = c.measure(0);
        c.observable(vec![m]);
        let mut rng = SmallRng::seed_from_u64(5);
        let lanes = 64 * 4000;
        let res = sample_batch(&c, lanes, &mut rng);
        let flips = (0..lanes).filter(|&l| res.observable_bit(0, l)).count();
        let rate = flips as f64 / lanes as f64;
        let expected = 0.2;
        assert!(
            (rate - expected).abs() < 0.01,
            "rate {rate} vs expected {expected}"
        );
    }
}
