//! End-to-end fault injection against the real binaries: a 3-shard
//! `sweep-launch` fleet of `fig11` at CI scale, with one child killed
//! mid-run (and, separately, one shard's artifact pre-torn as a kill
//! mid-write would leave it), must recover via salvage + `--resume`
//! restart and still merge artifacts byte-identical to a single-process
//! run. The supervision mechanics themselves are unit-tested against
//! scripted children in `crates/fleet/tests/supervise.rs`; this test
//! pins the whole stack.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The CI-scale fig11 grid: 2 rates x d in {3,5} x 2 decoders.
const FIG11_ARGS: [&str; 12] = [
    "--trials",
    "200",
    "--dmax",
    "5",
    "--setup",
    "baseline",
    "--rates",
    "5e-3,1e-2",
    "--decoder",
    "all",
    "--seed",
    "2020",
];

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vlq-fleet-fault-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the unsharded single-process reference into `dir`.
fn run_reference(dir: &Path) {
    let status = Command::new(env!("CARGO_BIN_EXE_fig11"))
        .args(FIG11_ARGS)
        .args(["--quiet", "--out", dir.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(status.success(), "reference fig11 run failed: {status}");
}

fn assert_merged_matches(out: &Path, reference: &Path) {
    for name in ["fig11.csv", "fig11.jsonl", "fig11.meta.json"] {
        assert_eq!(
            std::fs::read(out.join(name)).unwrap(),
            std::fs::read(reference.join(name)).unwrap(),
            "{name} diverges from the single-process reference"
        );
    }
}

/// Launches a 3-shard fleet with the given extra supervisor flags and
/// returns the supervisor's stdout report line.
fn launch_fleet(out: &Path, extra: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_sweep-launch"))
        .args(["--bin", "fig11", "--out", out.to_str().unwrap()])
        .args(["--procs", "3", "--poll-ms", "10", "--backoff-ms", "10"])
        .args(extra)
        .arg("--")
        .args(FIG11_ARGS)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "sweep-launch failed: {}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).unwrap()
}

#[test]
fn chaos_killed_shard_recovers_and_merges_byte_identically() {
    let base = scratch_dir("chaos");
    let (reference, out) = (base.join("ref"), base.join("fleet"));
    run_reference(&reference);
    // Kill shard 1 with SIGKILL once its JSONL reaches one complete
    // row; the supervisor must salvage the artifact and restart it
    // from the resume cache.
    let report = launch_fleet(&out, &["--quiet", "--chaos-kill", "1@1"]);
    assert!(report.contains("3 shard(s)"), "unexpected report: {report}");
    assert!(
        report.contains("1 restart(s)"),
        "expected exactly one restart after the chaos kill: {report}"
    );
    assert_merged_matches(&out, &reference);
    let sidecar = std::fs::read_to_string(out.join("fig11.fleet.json")).unwrap();
    assert!(sidecar.contains("\"schema\": \"vlq-fleet/v1\""));
    assert!(sidecar.contains("\"procs\": 3"));
}

#[test]
fn torn_shard_artifact_is_salvaged_on_restart() {
    let base = scratch_dir("torn");
    let (reference, out) = (base.join("ref"), base.join("fleet"));
    run_reference(&reference);
    // Pre-tear shard 1's artifact exactly as a kill mid-write would
    // leave it: one complete row (borrowed from the reference run, so
    // it parses and carries the right seed) plus a half-written line.
    // The child's strict `--resume` load rejects the torn file (exit
    // 2), the supervisor salvages it down to the valid prefix and
    // restarts, and the restarted child resumes from the salvaged row.
    let shard1 = out.join("shard1");
    std::fs::create_dir_all(&shard1).unwrap();
    let full = std::fs::read_to_string(reference.join("fig11.jsonl")).unwrap();
    let first = full.lines().next().unwrap();
    std::fs::write(
        shard1.join("fig11.jsonl"),
        format!("{first}\n{{\"index\": 99, \"torn"),
    )
    .unwrap();
    let report = launch_fleet(&out, &["--quiet"]);
    assert!(
        report.contains("1 restart(s)"),
        "expected exactly one restart for the torn artifact: {report}"
    );
    assert_merged_matches(&out, &reference);
}
