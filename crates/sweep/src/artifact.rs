//! Low-level machine-readable artifact helpers: CSV field quoting, JSON
//! string/number formatting, and a small [`Table`] builder the analytic
//! figure binaries (fig13, table1, table2, claims) use to emit CSV and
//! JSON-lines files next to their text tables.
//!
//! The vendored `serde` is a no-op facade (no registry access), so the
//! formats are written by hand. Numbers use Rust's shortest-roundtrip
//! `Display`, which both `f64::from_str` and any JSON parser read back
//! exactly.

use std::io::{self, Write};

/// Quotes a CSV field per RFC 4180 when it contains a comma, quote, or
/// newline; passes it through verbatim otherwise.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Formats a JSON string literal (with escaping).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values,
/// which JSON cannot represent).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` prints integral floats without a decimal point or
        // exponent; keep them valid-but-unambiguous JSON numbers as-is.
        s
    } else {
        "null".to_string()
    }
}

/// One cell of a [`Table`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A string cell.
    Str(String),
    /// A float cell.
    Num(f64),
    /// An integer cell.
    Int(i64),
    /// A boolean cell.
    Bool(bool),
    /// An empty cell (CSV: empty field, JSON: null).
    Null,
}

impl Value {
    fn csv(&self) -> String {
        match self {
            Value::Str(s) => csv_field(s),
            Value::Num(v) => format!("{v}"),
            Value::Int(v) => format!("{v}"),
            Value::Bool(b) => format!("{b}"),
            Value::Null => String::new(),
        }
    }

    fn json(&self) -> String {
        match self {
            Value::Str(s) => json_string(s),
            Value::Num(v) => json_f64(*v),
            Value::Int(v) => format!("{v}"),
            Value::Bool(b) => format!("{b}"),
            Value::Null => "null".to_string(),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A named-column table that renders to CSV and JSON-lines.
///
/// # Examples
///
/// ```
/// use vlq_sweep::artifact::Table;
///
/// let mut t = Table::new(["protocol", "rate"]);
/// t.row(["small-lattice".into(), 0.125.into()]);
/// let mut csv = Vec::new();
/// t.write_csv(&mut csv).unwrap();
/// assert_eq!(String::from_utf8(csv).unwrap(), "protocol,rate\nsmall-lattice,0.125\n");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// A table with the given column names.
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = S>) -> Self {
        Table {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn row(&mut self, cells: impl IntoIterator<Item = Value>) -> &mut Self {
        let cells: Vec<Value> = cells.into_iter().collect();
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity does not match table columns"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The sub-table holding this shard's rows: data row `g` (0-based)
    /// is kept iff `shard.owns(g)`, order preserved.
    ///
    /// This is the `--shard i/N` semantics of the analytic figure
    /// binaries (fig13, table1, table2, claims): N sharded artifacts
    /// interleave back into the full table row-for-row, exactly like
    /// sweep records merge by global point index.
    pub fn shard(&self, shard: crate::shard::ShardSpec) -> Table {
        Table {
            columns: self.columns.clone(),
            rows: self
                .rows
                .iter()
                .enumerate()
                .filter(|(g, _)| shard.owns(*g))
                .map(|(_, row)| row.clone())
                .collect(),
        }
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Writes the table as CSV (header + rows).
    pub fn write_csv<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let header: Vec<String> = self.columns.iter().map(|c| csv_field(c)).collect();
        writeln!(w, "{}", header.join(","))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Value::csv).collect();
            writeln!(w, "{}", cells.join(","))?;
        }
        Ok(())
    }

    /// Writes the table as JSON-lines (one object per row).
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for row in &self.rows {
            let fields: Vec<String> = self
                .columns
                .iter()
                .zip(row)
                .map(|(c, v)| format!("{}:{}", json_string(c), v.json()))
                .collect();
            writeln!(w, "{{{}}}", fields.join(","))?;
        }
        Ok(())
    }

    /// Writes `<stem>.csv` and `<stem>.jsonl` under `dir`, creating the
    /// directory if needed. Returns the two paths.
    pub fn write_dir(
        &self,
        dir: &std::path::Path,
        stem: &str,
    ) -> io::Result<(std::path::PathBuf, std::path::PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let csv_path = dir.join(format!("{stem}.csv"));
        let jsonl_path = dir.join(format!("{stem}.jsonl"));
        let mut csv = std::io::BufWriter::new(std::fs::File::create(&csv_path)?);
        self.write_csv(&mut csv)?;
        csv.flush()?;
        let mut jsonl = std::io::BufWriter::new(std::fs::File::create(&jsonl_path)?);
        self.write_jsonl(&mut jsonl)?;
        jsonl.flush()?;
        Ok((csv_path, jsonl_path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_quotes_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn table_round_trips() {
        let mut t = Table::new(["name", "x", "ok"]);
        t.row(["a,b".into(), 0.25.into(), true.into()]);
        t.row(["c".into(), Value::Null, false.into()]);
        assert_eq!(t.len(), 2);

        let mut csv = Vec::new();
        t.write_csv(&mut csv).unwrap();
        assert_eq!(
            String::from_utf8(csv).unwrap(),
            "name,x,ok\n\"a,b\",0.25,true\nc,,false\n"
        );

        let mut jsonl = Vec::new();
        t.write_jsonl(&mut jsonl).unwrap();
        assert_eq!(
            String::from_utf8(jsonl).unwrap(),
            "{\"name\":\"a,b\",\"x\":0.25,\"ok\":true}\n{\"name\":\"c\",\"x\":null,\"ok\":false}\n"
        );
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only-one".into()]);
    }
}
