//! Golden pins for the boundary-aware block redesign.
//!
//! The `BlockSpec` → `PreparedBlock` API replaced the old
//! memory-experiment-shaped `PreparedExperiment` sampling core. These
//! values were captured from the pre-redesign implementation (commit
//! 33c23a3) and pin `Boundary::Full` to it *bit-for-bit*: the windowed
//! noise pass over the full window, the wrapper types, and the
//! `BlockSampler` batching must all reproduce the old RNG streams and
//! decode decisions exactly. Any drift here silently invalidates every
//! recorded fig11/fig12 artifact, so these are hard equality pins, not
//! tolerances.

use vlq_qec::{
    compare_decoders, run_memory_experiment, BlockConfig, BlockSampler, BlockSpec, Boundary,
    DecoderKind, ExperimentConfig, PreparedBlock, PreparedExperiment,
};
use vlq_surface::schedule::{Basis, MemorySpec, Setup};

/// One pinned configuration: (setup, d, k, basis, p, seed, expected
/// 192-lane failure words).
type GoldenWordsRow = (Setup, usize, usize, Basis, f64, u64, [u64; 3]);

/// Pre-redesign `PreparedExperiment::sample_failure_words(192, seed)`
/// outputs for four configurations covering baseline, natural, and
/// compact setups in both bases.
const GOLDEN_WORDS: [GoldenWordsRow; 4] = [
    (
        Setup::Baseline,
        3,
        1,
        Basis::Z,
        5e-3,
        42,
        [2281703744, 4616190184990444128, 9223937736126243328],
    ),
    (
        Setup::NaturalInterleaved,
        3,
        3,
        Basis::Z,
        3e-3,
        7,
        [
            10952754293766096896,
            2305843009755021440,
            4647719282212339744,
        ],
    ),
    (
        Setup::CompactAllAtOnce,
        3,
        4,
        Basis::X,
        4e-3,
        11,
        [
            9225660945186295809,
            4611686031312289864,
            9799885738192408576,
        ],
    ),
    (
        Setup::CompactInterleaved,
        5,
        4,
        Basis::Z,
        2e-3,
        5,
        [9277767077463064578, 1044835117849141250, 144255947042197504],
    ),
];

#[test]
fn full_boundary_failure_words_match_pre_redesign_bits() {
    for (setup, d, k, basis, p, seed, expected) in GOLDEN_WORDS {
        let memory = MemorySpec::standard(setup, d, k, basis);

        // Through the new block API directly...
        let block = PreparedBlock::prepare(
            &BlockConfig::new(BlockSpec::full(memory), p).with_decoder(DecoderKind::UnionFind),
        );
        assert_eq!(
            block.sample_failure_words(192, seed),
            expected,
            "PreparedBlock {setup} d{d} k{k} {basis:?}"
        );

        // ...and through the memory-experiment wrapper.
        let wrapped = PreparedExperiment::prepare(
            &ExperimentConfig::new(memory, p).with_decoder(DecoderKind::UnionFind),
        );
        assert_eq!(
            wrapped.sample_failure_words(192, seed),
            expected,
            "PreparedExperiment {setup} d{d} k{k} {basis:?}"
        );
    }
}

/// One pinned boundary-mode row: (setup, d, k, basis, p, seed, boundary,
/// expected 192-lane failure words).
type GoldenBoundaryRow = (Setup, usize, usize, Basis, f64, u64, Boundary, [u64; 3]);

/// `PreparedBlock::sample_failure_words(192, seed)` outputs for the same
/// four configurations under *every* [`Boundary`] mode, captured
/// immediately before the batched sample→decode refactor (scratch-reusing
/// decoders + word-level defect extraction). The refactor must be
/// bit-identical: same RNG draws in the same order, same per-lane defect
/// lists, same decode decisions — for windowed noise passes too, where
/// the noiseless prefix/suffix exercises the empty-defect paths.
const GOLDEN_BOUNDARY_WORDS: [GoldenBoundaryRow; 16] = [
    (
        Setup::Baseline,
        3,
        1,
        Basis::Z,
        5e-3,
        42,
        Boundary::Full,
        [2281703744, 4616190184990444128, 9223937736126243328],
    ),
    (
        Setup::Baseline,
        3,
        1,
        Basis::Z,
        5e-3,
        42,
        Boundary::Prep,
        [2281701632, 4616190184990444128, 9223937735589372416],
    ),
    (
        Setup::Baseline,
        3,
        1,
        Basis::Z,
        5e-3,
        42,
        Boundary::Readout,
        [2281703744, 4616190184990444128, 9223937736126243328],
    ),
    (
        Setup::Baseline,
        3,
        1,
        Basis::Z,
        5e-3,
        42,
        Boundary::MidCircuit,
        [2281701632, 4616190184990444128, 9223937735589372416],
    ),
    (
        Setup::NaturalInterleaved,
        3,
        3,
        Basis::Z,
        3e-3,
        7,
        Boundary::Full,
        [
            10952754293766096896,
            2305843009755021440,
            4647719282212339744,
        ],
    ),
    (
        Setup::NaturalInterleaved,
        3,
        3,
        Basis::Z,
        3e-3,
        7,
        Boundary::Prep,
        [
            10952754293766094848,
            2305843009755021440,
            4647719282212339712,
        ],
    ),
    (
        Setup::NaturalInterleaved,
        3,
        3,
        Basis::Z,
        3e-3,
        7,
        Boundary::Readout,
        [279172875394, 9232383687847575624, 38487202463744],
    ),
    (
        Setup::NaturalInterleaved,
        3,
        3,
        Basis::Z,
        3e-3,
        7,
        Boundary::MidCircuit,
        [279172875394, 9223376454233096264, 36288179208192],
    ),
    (
        Setup::CompactAllAtOnce,
        3,
        4,
        Basis::X,
        4e-3,
        11,
        Boundary::Full,
        [
            9225660945186295809,
            4611686031312289864,
            9799885738192408576,
        ],
    ),
    (
        Setup::CompactAllAtOnce,
        3,
        4,
        Basis::X,
        4e-3,
        11,
        Boundary::Prep,
        [
            9225660670308388865,
            4611694818815377480,
            9799885738192408576,
        ],
    ),
    (
        Setup::CompactAllAtOnce,
        3,
        4,
        Basis::X,
        4e-3,
        11,
        Boundary::Readout,
        [2308288361881732868, 576460889779101720, 5800682639295774722],
    ),
    (
        Setup::CompactAllAtOnce,
        3,
        4,
        Basis::X,
        4e-3,
        11,
        Boundary::MidCircuit,
        [2308288361881741060, 576460889779101720, 5800647454923685890],
    ),
    (
        Setup::CompactInterleaved,
        5,
        4,
        Basis::Z,
        2e-3,
        5,
        Boundary::Full,
        [9277767077463064578, 1044835117849141250, 144255947042197504],
    ),
    (
        Setup::CompactInterleaved,
        5,
        4,
        Basis::Z,
        2e-3,
        5,
        Boundary::Prep,
        [9259752678953582594, 1044835117865918466, 144255947042197505],
    ),
    (
        Setup::CompactInterleaved,
        5,
        4,
        Basis::Z,
        2e-3,
        5,
        Boundary::Readout,
        [9237516156581986304, 54613446943571970, 17592188666384],
    ),
    (
        Setup::CompactInterleaved,
        5,
        4,
        Basis::Z,
        2e-3,
        5,
        Boundary::MidCircuit,
        [9255530555091468288, 54612897187758082, 17592188666385],
    ),
];

#[test]
fn all_boundary_modes_failure_words_are_pinned() {
    for (setup, d, k, basis, p, seed, boundary, expected) in GOLDEN_BOUNDARY_WORDS {
        let memory = MemorySpec::standard(setup, d, k, basis);
        let block = PreparedBlock::prepare(
            &BlockConfig::new(BlockSpec { memory, boundary }, p)
                .with_decoder(DecoderKind::UnionFind),
        );
        assert_eq!(
            block.sample_failure_words(192, seed),
            expected,
            "{setup} d{d} k{k} {basis:?} {boundary:?}"
        );
    }
}

#[test]
fn run_memory_experiment_matches_pre_redesign_counts() {
    // (setup, d, k, basis, p, failures@threads=1, failures@threads=3),
    // all at 4096 shots, seed 99, MWPM.
    let golden: [(Setup, usize, usize, Basis, f64, u64, u64); 3] = [
        (Setup::Baseline, 3, 1, Basis::Z, 5e-3, 476, 492),
        (Setup::NaturalAllAtOnce, 3, 3, Basis::Z, 3e-3, 317, 310),
        (Setup::CompactInterleaved, 3, 4, Basis::X, 4e-3, 517, 517),
    ];
    for (setup, d, k, basis, p, f1, f3) in golden {
        for (threads, expected) in [(1usize, f1), (3, f3)] {
            let cfg = ExperimentConfig::new(MemorySpec::standard(setup, d, k, basis), p)
                .with_shots(4096)
                .with_seed(99)
                .with_threads(threads)
                .with_decoder(DecoderKind::Mwpm);
            let res = run_memory_experiment(&cfg);
            assert_eq!(
                res.failures, expected,
                "{setup} d{d} k{k} {basis:?} threads {threads}"
            );
        }
    }
}

#[test]
fn compare_decoders_matches_pre_redesign_counts() {
    let cfg = ExperimentConfig::new(MemorySpec::standard(Setup::Baseline, 3, 1, Basis::Z), 5e-3)
        .with_shots(4096)
        .with_seed(31)
        .with_threads(2);
    let res = compare_decoders(&cfg, &[DecoderKind::Mwpm, DecoderKind::UnionFind]);
    assert_eq!((res[0].failures, res[1].failures), (462, 482));
}

#[test]
fn full_boundary_noise_window_covers_everything() {
    // The Full window must be the whole circuit — that is what makes
    // the bit-for-bit pins above structural rather than coincidental.
    let memory = MemorySpec::standard(Setup::NaturalInterleaved, 3, 3, Basis::Z);
    let block = PreparedBlock::prepare(&BlockConfig::new(BlockSpec::full(memory), 2e-3));
    let (start, end) = block.memory.noise_window(Boundary::Full);
    assert_eq!(start, 0);
    assert_eq!(end, block.memory.circuit.instructions.len());
    // And the block boundaries are recorded strictly inside it.
    assert!(block.memory.prep_end > 0);
    assert!(block.memory.prep_end < block.memory.body_end);
    assert!(block.memory.body_end < end);
}
