//! A minimal logical-circuit IR and its compiler onto the [`VlqMachine`].
//!
//! Programs are sequences of logical operations over virtual qubit
//! indices. Since the scheduling/execution split, compilation is a
//! separate phase: [`compile`] allocates machine qubits, schedules every
//! operation under the paper's latency model, and returns the typed
//! [`Schedule`] — which any [`crate::exec::Executor`] backend can then
//! replay for latency numbers ([`crate::exec::CostExecutor`]),
//! program-level logical error rates ([`crate::exec::FrameExecutor`]),
//! or trace artifacts ([`crate::exec::TraceExecutor`]). T gates are
//! modeled as magic-state consumption (the factory models live in
//! `vlq-magic`).

use crate::isa::{LogicalGate1Q, Schedule};
use crate::machine::{LogicalId, MachineConfig, MachineError, VlqMachine};

/// One logical program operation over virtual indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgOp {
    /// Controlled-NOT.
    Cnot(usize, usize),
    /// Hadamard (transversal-class single-qubit op).
    H(usize),
    /// T gate (consumes one magic state; latency of one transversal
    /// CNOT + measurement, modeled as 2 timesteps via teleportation).
    T(usize),
    /// Destructive logical measurement.
    Measure(usize),
}

/// A logical circuit over `num_qubits` virtual qubits.
#[derive(Clone, Debug, Default)]
pub struct LogicalCircuit {
    /// Number of virtual qubits.
    pub num_qubits: usize,
    /// Operation list.
    pub ops: Vec<ProgOp>,
}

impl LogicalCircuit {
    /// Creates an empty circuit.
    pub fn new(num_qubits: usize) -> Self {
        LogicalCircuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Appends an op (builder style).
    pub fn push(&mut self, op: ProgOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// A GHZ-state preparation circuit on `n` qubits.
    pub fn ghz(n: usize) -> Self {
        let mut c = LogicalCircuit::new(n);
        c.push(ProgOp::H(0));
        for i in 1..n {
            c.push(ProgOp::Cnot(i - 1, i));
        }
        c
    }

    /// Quantum teleportation of qubit 0 through a Bell pair on qubits
    /// 1-2 (the Pauli corrections are classically controlled and carry
    /// no scheduling cost here).
    pub fn teleport() -> Self {
        let mut c = LogicalCircuit::new(3);
        c.push(ProgOp::H(1))
            .push(ProgOp::Cnot(1, 2))
            .push(ProgOp::Cnot(0, 1))
            .push(ProgOp::H(0))
            .push(ProgOp::Measure(0))
            .push(ProgOp::Measure(1));
        c
    }

    /// The Clifford+T skeleton of an `n`-bit ripple-carry adder
    /// (Toffolis in the standard 7-T decomposition, carries in dedicated
    /// qubits). A latency/fidelity workload shape — heavy in cross-qubit
    /// CNOTs and magic states — not a verified arithmetic circuit.
    pub fn adder(n: usize) -> Self {
        // Layout: a[0..n], b[0..n], carries c[0..n].
        let mut circ = LogicalCircuit::new(3 * n);
        let (a, b, c) = (0, n, 2 * n);
        for i in 0..n {
            circ.toffoli(a + i, b + i, c + i);
            circ.push(ProgOp::Cnot(a + i, b + i));
            if i + 1 < n {
                circ.push(ProgOp::Cnot(c + i, b + i + 1));
            }
        }
        for q in b..2 * n {
            circ.push(ProgOp::Measure(q));
        }
        circ
    }

    /// Appends the standard 7-T Toffoli decomposition (T and T† both
    /// consume one magic state, so both map to [`ProgOp::T`]).
    pub fn toffoli(&mut self, a: usize, b: usize, c: usize) -> &mut Self {
        self.push(ProgOp::H(c))
            .push(ProgOp::Cnot(b, c))
            .push(ProgOp::T(c))
            .push(ProgOp::Cnot(a, c))
            .push(ProgOp::T(c))
            .push(ProgOp::Cnot(b, c))
            .push(ProgOp::T(c))
            .push(ProgOp::Cnot(a, c))
            .push(ProgOp::T(b))
            .push(ProgOp::T(c))
            .push(ProgOp::H(c))
            .push(ProgOp::Cnot(a, b))
            .push(ProgOp::T(b))
            .push(ProgOp::Cnot(a, b))
            .push(ProgOp::T(a))
    }

    /// Number of T gates (magic states needed).
    pub fn t_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, ProgOp::T(_)))
            .count()
    }
}

/// A compiled logical program: the typed schedule plus allocation
/// metadata.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The replayable instruction schedule.
    pub schedule: Schedule,
    /// Machine qubit handles, indexed by virtual qubit.
    pub qubits: Vec<LogicalId>,
    /// Magic states consumed.
    pub magic_states: usize,
}

/// Compiles a logical circuit for a machine shape, returning the typed
/// schedule (phase one of the two-phase model; hand it to any
/// [`crate::exec::Executor`]).
///
/// # Errors
///
/// Propagates machine errors (capacity, dead qubits).
///
/// # Examples
///
/// ```
/// use vlq::exec::{CostExecutor, Executor};
/// use vlq::machine::MachineConfig;
/// use vlq::program::{compile, LogicalCircuit};
///
/// let compiled = compile(&LogicalCircuit::ghz(4), MachineConfig::compact_demo()).unwrap();
/// let report = CostExecutor.run(&compiled.schedule).unwrap();
/// assert_eq!(report.transversal_cnots + report.surgery_cnots, 3);
/// ```
pub fn compile(
    circuit: &LogicalCircuit,
    config: MachineConfig,
) -> Result<CompiledProgram, MachineError> {
    let mut machine = VlqMachine::new(config);
    let qubits = run_program(&mut machine, circuit)?;
    Ok(CompiledProgram {
        schedule: machine.into_schedule(),
        qubits,
        magic_states: circuit.t_count(),
    })
}

/// Schedules a logical circuit on an existing machine (the in-place
/// form of [`compile`]; chain several circuits on one machine, then call
/// [`VlqMachine::finish`] or [`VlqMachine::into_schedule`]).
///
/// # Errors
///
/// Propagates machine errors (capacity, dead qubits).
pub fn run_program(
    machine: &mut VlqMachine,
    circuit: &LogicalCircuit,
) -> Result<Vec<LogicalId>, MachineError> {
    let ids: Vec<LogicalId> = (0..circuit.num_qubits)
        .map(|_| machine.alloc())
        .collect::<Result<_, _>>()?;
    for op in &circuit.ops {
        match *op {
            ProgOp::Cnot(c, t) => machine.cnot(ids[c], ids[t])?,
            ProgOp::H(q) => machine.logical_1q(ids[q], LogicalGate1Q::H)?,
            ProgOp::T(q) => machine.consume_magic(ids[q])?,
            ProgOp::Measure(q) => machine.measure(ids[q])?,
        }
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{CostExecutor, Executor};
    use crate::machine::MachineConfig;

    #[test]
    fn ghz_program_runs() {
        let mut m = VlqMachine::new(MachineConfig::compact_demo());
        let circuit = LogicalCircuit::ghz(6);
        run_program(&mut m, &circuit).unwrap();
        let r = m.finish();
        assert_eq!(r.transversal_cnots + r.surgery_cnots, 5);
        assert!(r.total_timesteps >= 6);
    }

    #[test]
    fn t_count() {
        let mut c = LogicalCircuit::new(2);
        c.push(ProgOp::T(0))
            .push(ProgOp::T(1))
            .push(ProgOp::Cnot(0, 1));
        assert_eq!(c.t_count(), 2);
    }

    #[test]
    fn compile_matches_in_place_scheduling() {
        let circuit = LogicalCircuit::ghz(5);
        let compiled = compile(&circuit, MachineConfig::compact_demo()).unwrap();
        compiled.schedule.validate().unwrap();
        assert_eq!(compiled.qubits.len(), 5);

        let mut m = VlqMachine::new(MachineConfig::compact_demo());
        run_program(&mut m, &circuit).unwrap();
        let eager = m.finish();
        let replayed = CostExecutor.run(&compiled.schedule).unwrap();
        assert_eq!(eager.total_timesteps, replayed.total_timesteps);
        assert_eq!(eager.timeline, replayed.timeline);
    }

    #[test]
    fn teleport_and_adder_workloads_compile() {
        let teleport = compile(&LogicalCircuit::teleport(), MachineConfig::compact_demo()).unwrap();
        let r = CostExecutor.run(&teleport.schedule).unwrap();
        assert_eq!(r.transversal_cnots + r.surgery_cnots, 2);

        let adder = LogicalCircuit::adder(2);
        assert_eq!(adder.t_count(), 2 * 7);
        let compiled = compile(&adder, MachineConfig::compact_demo()).unwrap();
        assert_eq!(compiled.magic_states, 14);
        let r = CostExecutor.run(&compiled.schedule).unwrap();
        // 6 CNOTs per Toffoli + 1 sum CNOT per bit + 1 carry-chain CNOT.
        assert_eq!(r.transversal_cnots + r.surgery_cnots, 15);
    }

    #[test]
    fn co_located_program_is_faster_than_surgery() {
        // All six GHZ qubits fit one stack (k-1 = 9 modes): every CNOT is
        // transversal. With the surgery policy it costs 6x per CNOT.
        let mut cfg = MachineConfig::compact_demo();
        cfg.stacks_x = 1;
        cfg.stacks_y = 1;
        let mut fast = VlqMachine::new(cfg);
        run_program(&mut fast, &LogicalCircuit::ghz(6)).unwrap();
        let fast_steps = fast.finish().total_timesteps;

        let mut cfg2 = MachineConfig::compact_demo();
        cfg2.prefer_transversal = false;
        cfg2.stacks_x = 6; // force one qubit per stack
        cfg2.stacks_y = 1;
        cfg2.k = 2;
        let mut slow = VlqMachine::new(cfg2);
        // Spread allocations: alloc() picks emptiest stack, so 6 qubits
        // land on 6 stacks.
        run_program(&mut slow, &LogicalCircuit::ghz(6)).unwrap();
        let slow_steps = slow.finish().total_timesteps;
        assert!(
            fast_steps * 3 < slow_steps,
            "fast {fast_steps} vs slow {slow_steps}"
        );
    }
}
