//! Workspace enforcement of the sharding acceptance criterion: for the
//! fig11 CI-scale grid run through the real Monte-Carlo executor,
//! artifacts from any shard count and any per-shard worker count,
//! merged with `vlq_sweep::merge_artifacts`, are **byte-identical** to
//! a single-process run's CSV and JSONL — and the merged JSONL is a
//! valid resume cache that replays the full run without sampling a
//! single shot.

use std::path::PathBuf;

use vlq_decoder::DecoderKind;
use vlq_qec::MemoryExecutor;
use vlq_surface::schedule::Setup;
use vlq_sweep::{
    combine_fingerprints, merge_artifacts, verify_artifact, CsvSink, JsonlSink, ResumeCache,
    RunOptions, ShardSpec, SweepEngine, SweepExecutor, SweepMeta, SweepPoint, SweepRecord,
    SweepSpec, VerifyExpectations,
};

/// The CI smoke grid: 1 setup × d ∈ {3,5} × 2 rates × 2 decoders.
fn ci_spec() -> SweepSpec {
    SweepSpec::new()
        .setups([Setup::Baseline])
        .distances([3, 5])
        .ks([10])
        .decoders(DecoderKind::ALL)
        .error_rates([5e-3, 1e-2])
        .shots(200)
        .base_seed(2020)
}

fn meta_of(spec: &SweepSpec, shard: ShardSpec) -> SweepMeta {
    SweepMeta {
        seed: spec.base_seed,
        spec_fingerprint: combine_fingerprints(0, spec.fingerprint()),
        points: spec.len() as u64,
        shard,
        plan: None,
    }
}

/// Runs one shard with file sinks, exactly like `fig11 --out --shard`.
fn run_to_dir(
    spec: &SweepSpec,
    dir: &PathBuf,
    shard: ShardSpec,
    workers: usize,
) -> Vec<SweepRecord> {
    std::fs::create_dir_all(dir).unwrap();
    let mut csv = CsvSink::create(&dir.join("fig11.csv")).unwrap();
    let mut jsonl = JsonlSink::create(&dir.join("fig11.jsonl")).unwrap();
    meta_of(spec, shard).write(dir, "fig11").unwrap();
    let engine = SweepEngine {
        // Several chunks per point so steal order genuinely varies.
        chunk_shots: 64,
        ..SweepEngine::with_workers(workers)
    };
    engine
        .run_opts(
            spec,
            &MemoryExecutor::default(),
            &mut [&mut csv, &mut jsonl],
            &ResumeCache::new(),
            &RunOptions {
                shard,
                index_offset: 0,
                plan: None,
            },
        )
        .unwrap()
}

#[test]
fn sharded_fig11_merges_byte_identically_and_resumes() {
    let base = std::env::temp_dir().join("vlq-qec-shard-merge");
    let _ = std::fs::remove_dir_all(&base);
    let spec = ci_spec();

    let full_dir = base.join("full");
    let full = run_to_dir(&spec, &full_dir, ShardSpec::FULL, 2);
    assert_eq!(full.len(), 8);

    for count in [2usize, 3] {
        let mut dirs = Vec::new();
        for index in 0..count {
            let shard = ShardSpec::new(index, count).unwrap();
            let dir = base.join(format!("n{count}-s{index}"));
            // Deliberately different worker counts per shard: worker-
            // count independence must survive sharding.
            run_to_dir(&spec, &dir, shard, 1 + index * 2);
            dirs.push(dir);
        }
        let merged = base.join(format!("n{count}-merged"));
        let report = merge_artifacts(&dirs, "fig11", &merged).unwrap();
        assert_eq!(report.rows, 8);
        assert_eq!(report.seed, Some(2020));
        for file in ["fig11.csv", "fig11.jsonl", "fig11.meta.json"] {
            assert_eq!(
                std::fs::read(merged.join(file)).unwrap(),
                std::fs::read(full_dir.join(file)).unwrap(),
                "{count} shards: {file} differs from the single-process run"
            );
        }
        verify_artifact(
            &merged,
            "fig11",
            &VerifyExpectations {
                rows: Some(8),
                seed: Some(2020),
                shots: Some(200),
            },
        )
        .unwrap();

        // The merged artifact is a valid resume cache: a fresh full run
        // over it must not sample a single shot.
        struct NeverRun;
        impl SweepExecutor for NeverRun {
            type Prepared = ();
            fn prepare(&self, _point: &SweepPoint) {}
            fn run_chunk(&self, _p: &(), pt: &SweepPoint, _shots: u64, _seed: u64) -> u64 {
                panic!("merged-artifact resume re-ran {pt:?}")
            }
        }
        let cache =
            ResumeCache::load_jsonl_expecting(&merged.join("fig11.jsonl"), spec.base_seed).unwrap();
        let replayed = SweepEngine::with_workers(2)
            .run_resumable(&spec, &NeverRun, &mut [], &cache)
            .unwrap();
        assert_eq!(replayed, full);
    }
}
